"""Deterministic fault injection — crashes, hangs, and NaN payloads.

Recovery code that is never executed is broken code; this module makes
every recovery path of the engine exercisable on demand.  A
:class:`ChaosPlan` names faults by *where they strike*:

* ``kind="raise"`` — the task function raises :class:`ChaosError`;
* ``kind="exit"`` — the worker process dies hard (``os._exit``),
  breaking the process pool (in the main process this downgrades to a
  :class:`ChaosError` so a serial fallback never kills the run itself);
* ``kind="hang"`` — the task sleeps past any reasonable wall-clock
  budget, exercising the executor's timeout path;
* ``kind="worker-lost"`` — the process dies hard *while holding a task
  lease*: in a dispatch worker (a process that called
  :func:`declare_worker_process`, i.e. ``repro worker``) or a pool
  worker this is ``os._exit``, leaving the claimed task's lease to go
  stale so the dispatcher's re-issue path is exercised; in a main
  process it downgrades to a :class:`ChaosError`;
* ``kind="nan"`` — a numerical kernel's output array is corrupted with
  NaNs at chosen link positions, exercising the
  :mod:`~repro.engine.guards` layer.

Faults match on the executor stage name and task index (either may be
``None`` = any), and are **once-only by default**: the first attempt
that reaches the fault claims a marker file in ``state_dir`` (atomic
``O_CREAT | O_EXCL``, so the claim is race-free across worker
processes) and later attempts run clean — exactly the transient-fault
shape retry/backoff is built for.  Set ``once=False`` for a persistent
fault.

Plans are plain JSON: the CLI and pool workers load them from the
``REPRO_CHAOS`` environment variable (a path to a plan file), and the
executor re-ships the installed plan through its pool initializer, so
injection behaves identically on fork and spawn start methods.

No fault fires unless a plan is installed; the inactive fast path is a
single module-level ``None`` check.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs import metrics as _metrics

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "Fault",
    "active",
    "corrupt",
    "current_plan",
    "declare_worker_process",
    "install",
    "install_from_env",
    "install_from_file",
    "is_worker_process",
    "on_task_start",
    "set_current_task",
    "uninstall",
]

#: Environment variable naming a JSON chaos-plan file.
CHAOS_ENV = "REPRO_CHAOS"

FAULT_KINDS = ("raise", "exit", "hang", "nan", "worker-lost")


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` (or downgraded ``exit``) fault throws."""


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    ``stage``/``index`` select the executor task (``None`` = any);
    ``site``/``links`` select the kernel call site for ``nan`` faults.
    """

    kind: str
    stage: "str | None" = None
    index: "int | None" = None
    site: "str | None" = None
    links: "tuple[int, ...]" = ()
    once: bool = True
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.kind == "nan" and not self.site:
            raise ValueError("nan faults need a site (the kernel call site name)")

    def matches_task(self, stage: str, index: int) -> bool:
        return (self.stage is None or self.stage == stage) and (
            self.index is None or self.index == index
        )

    def to_dict(self) -> "dict[str, Any]":
        return {
            "kind": self.kind,
            "stage": self.stage,
            "index": self.index,
            "site": self.site,
            "links": list(self.links),
            "once": self.once,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, doc: "dict[str, Any]") -> "Fault":
        return cls(
            kind=doc["kind"],
            stage=doc.get("stage"),
            index=doc.get("index"),
            site=doc.get("site"),
            links=tuple(int(x) for x in doc.get("links", ())),
            once=bool(doc.get("once", True)),
            hang_seconds=float(doc.get("hang_seconds", 3600.0)),
        )


@dataclass(frozen=True)
class ChaosPlan:
    """A set of faults plus the marker directory for once-only claims."""

    state_dir: str
    faults: "tuple[Fault, ...]" = field(default_factory=tuple)

    def to_dict(self) -> "dict[str, Any]":
        return {
            "state_dir": self.state_dir,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, doc: "dict[str, Any]") -> "ChaosPlan":
        return cls(
            state_dir=str(doc["state_dir"]),
            faults=tuple(Fault.from_dict(f) for f in doc.get("faults", ())),
        )


_PLAN: "ChaosPlan | None" = None
#: The (stage, index) of the task currently executing in this process.
_CURRENT_TASK: "tuple[str, int] | None" = None
#: Whether this process declared itself a dispatch worker (``repro
#: worker``) — the target population of ``worker-lost`` faults.
_WORKER_PROCESS = False


def declare_worker_process(flag: bool = True) -> None:
    """Mark this process as a dispatch worker (``worker-lost`` faults
    may kill it hard instead of downgrading to an exception)."""
    global _WORKER_PROCESS
    _WORKER_PROCESS = bool(flag)


def is_worker_process() -> bool:
    return _WORKER_PROCESS


def install(plan: "ChaosPlan | None") -> None:
    """Install ``plan`` process-wide (``None`` uninstalls)."""
    global _PLAN
    if plan is not None:
        Path(plan.state_dir).mkdir(parents=True, exist_ok=True)
    _PLAN = plan


def uninstall() -> None:
    install(None)


def active() -> bool:
    return _PLAN is not None


def current_plan() -> "ChaosPlan | None":
    return _PLAN


def install_from_file(path) -> ChaosPlan:
    """Load and install a JSON plan file; returns the plan."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    plan = ChaosPlan.from_dict(doc)
    install(plan)
    return plan


def install_from_env() -> "ChaosPlan | None":
    """Install the plan named by ``$REPRO_CHAOS``, if any."""
    path = os.environ.get(CHAOS_ENV)
    if not path:
        return None
    return install_from_file(path)


def _claim(plan: ChaosPlan, marker: str) -> bool:
    """Atomically claim a once-only marker; True exactly once per marker."""
    target = Path(plan.state_dir) / marker
    try:
        fd = os.open(target, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _should_fire(plan: ChaosPlan, fault: Fault, fault_pos: int, key: str) -> bool:
    if not fault.once:
        return True
    return _claim(plan, f"fault-{fault_pos}-{key}")


def set_current_task(stage: "str | None", index: "int | None") -> None:
    """Record which executor task this process is running (``None`` clears)."""
    global _CURRENT_TASK
    _CURRENT_TASK = None if stage is None else (stage, int(index))


def on_task_start(stage: str, index: int) -> None:
    """Fire any crash/hang fault aimed at this task.

    Called by the executor at the top of every task execution (every
    attempt), in the process that runs the task.
    """
    plan = _PLAN
    if plan is None:
        return
    for pos, fault in enumerate(plan.faults):
        if fault.kind == "nan" or not fault.matches_task(stage, index):
            continue
        if not _should_fire(plan, fault, pos, f"{fault.kind}-{stage}-{index}"):
            continue
        _metrics.add("chaos.faults_fired")
        if fault.kind == "raise":
            raise ChaosError(f"injected crash in task {index} (stage {stage!r})")
        if fault.kind == "hang":
            time.sleep(fault.hang_seconds)
            return
        if fault.kind == "exit":
            if multiprocessing.parent_process() is None:
                # Hard-killing the main process would take the harness
                # down with the fault; degrade to an ordinary crash.
                raise ChaosError(
                    f"injected worker death in task {index} (stage {stage!r}) "
                    "downgraded to an exception in the main process"
                )
            os._exit(43)
        if fault.kind == "worker-lost":
            # Kill any kind of worker — a dispatch worker (its own
            # top-level process, so ``exit`` would not reach it) dies
            # holding its task lease, which is exactly the stale-lease
            # shape the dispatcher's re-issue path recovers from.
            if _WORKER_PROCESS or multiprocessing.parent_process() is not None:
                os._exit(44)
            raise ChaosError(
                f"injected worker loss in task {index} (stage {stage!r}) "
                "downgraded to an exception in the main process"
            )


def corrupt(site: str, arr: np.ndarray) -> np.ndarray:
    """Apply any matching ``nan`` fault to a kernel output array.

    Returns ``arr`` untouched (same object) when no fault matches; a
    corrupted copy otherwise.  ``links`` index the array's last axis.
    """
    plan = _PLAN
    if plan is None:
        return arr
    for pos, fault in enumerate(plan.faults):
        if fault.kind != "nan" or fault.site != site:
            continue
        if _CURRENT_TASK is not None and not fault.matches_task(*_CURRENT_TASK):
            continue
        if fault.stage is not None and _CURRENT_TASK is None:
            continue
        key = f"nan-{site}" if _CURRENT_TASK is None else f"nan-{site}-{_CURRENT_TASK[0]}-{_CURRENT_TASK[1]}"
        if not _should_fire(plan, fault, pos, key):
            continue
        _metrics.add("chaos.faults_fired")
        out = np.array(arr, dtype=np.float64, copy=True)
        links = fault.links if fault.links else (0,)
        out[..., list(links)] = np.nan
        return out
    return arr
