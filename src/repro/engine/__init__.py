"""Execution engine: experiment registry, deterministic parallel executor.

The engine is the layer between the experiment drivers and the CLI:

* :mod:`repro.engine.registry` — decorator-based registration of every
  DESIGN.md experiment (id, title, scale→config factory, runner), so the
  CLI and the benchmark suite discover experiments instead of
  hand-maintaining a table.
* :mod:`repro.engine.executor` — a ``map_tasks`` abstraction with serial
  and process-pool backends.  Each task carries a child
  :class:`numpy.random.SeedSequence` spawned from the experiment's root
  seed, so ``jobs=1`` and ``jobs=8`` produce bit-identical results.
"""

from repro.engine.executor import StageTimer, Task, make_tasks, map_tasks, resolve_jobs
from repro.engine.registry import (
    ExperimentSpec,
    all_specs,
    get_spec,
    register,
    scaled_config,
    seed_kwargs,
)

__all__ = [
    "ExperimentSpec",
    "StageTimer",
    "Task",
    "all_specs",
    "get_spec",
    "make_tasks",
    "map_tasks",
    "register",
    "resolve_jobs",
    "scaled_config",
    "seed_kwargs",
]
