"""Execution engine: registry, deterministic executor, fault tolerance.

The engine is the layer between the experiment drivers and the CLI:

* :mod:`repro.engine.registry` — decorator-based registration of every
  DESIGN.md experiment (id, title, scale→config factory, runner), so the
  CLI and the benchmark suite discover experiments instead of
  hand-maintaining a table.
* :mod:`repro.engine.executor` — a ``map_tasks`` abstraction over
  pluggable execution backends (:mod:`repro.engine.backends`): serial,
  process-pool, and a multi-host work-stealing dispatcher served by
  ``repro worker`` processes.  Each task carries a child
  :class:`numpy.random.SeedSequence` spawned from the experiment's root
  seed, so every backend at every worker count produces bit-identical
  results.
* :mod:`repro.engine.faults` — failure records, retry policy with
  deterministic backoff jitter, and the per-run execution policy.
* :mod:`repro.engine.journal` — incremental checkpointing of completed
  task results with atomic, checksummed records (``--resume``).
* :mod:`repro.engine.guards` — numerical validation of kernel outputs
  (NaN/Inf/probability-range) at configurable strictness.
* :mod:`repro.engine.chaos` — deterministic fault injection (crashes,
  hangs, corrupted records, NaN payloads) for exercising recovery paths.

Observability lives in its own layer (:mod:`repro.obs`): the executor
ships worker-side metric buffers back on task results and emits task
spans, the registry opens one experiment span per run, and
``StageTimer`` (re-exported here for compatibility) is the span-backed
stage timer from :mod:`repro.obs.trace`.
"""

from repro.engine.backends import (
    DispatchBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_executor,
)
from repro.engine.executor import StageTimer, Task, make_tasks, map_tasks, resolve_jobs
from repro.engine.faults import (
    EXECUTOR_MODES,
    ExecutionPolicy,
    RetryPolicy,
    RunReport,
    TaskFailure,
    completed,
    current_policy,
    execution_scope,
    is_failure,
    usable_results,
)
from repro.engine.journal import JournalError, RunJournal
from repro.engine.registry import (
    ExperimentSpec,
    all_specs,
    get_spec,
    register,
    scaled_config,
    seed_kwargs,
)

__all__ = [
    "DispatchBackend",
    "EXECUTOR_MODES",
    "ExecutionBackend",
    "ExecutionPolicy",
    "ExperimentSpec",
    "JournalError",
    "ProcessPoolBackend",
    "RetryPolicy",
    "RunJournal",
    "RunReport",
    "SerialBackend",
    "StageTimer",
    "Task",
    "TaskFailure",
    "all_specs",
    "resolve_executor",
    "completed",
    "current_policy",
    "execution_scope",
    "get_spec",
    "is_failure",
    "make_tasks",
    "map_tasks",
    "register",
    "resolve_jobs",
    "scaled_config",
    "seed_kwargs",
    "usable_results",
]
