"""Failure records, retry policy, and the per-run execution policy.

The executor's fault-tolerance knobs live here so that drivers, the
registry, and the CLI all speak the same vocabulary:

* :class:`TaskFailure` — the structured record that takes a failed
  task's slot in the :func:`~repro.engine.executor.map_tasks` result
  list when the run is configured to survive failures
  (``on_error="skip"`` or ``"retry"``) instead of raising.
* :class:`RetryPolicy` — exponential backoff with deterministic jitter
  (seeded from ``(task index, attempt)``, so two identical runs sleep
  identical schedules).
* :class:`ExecutionPolicy` — one bundle of all fault knobs (error
  policy, retry schedule, per-task timeout, journal) that the CLI
  installs for the duration of an experiment via
  :func:`execution_scope`; ``map_tasks`` reads the ambient policy so
  driver signatures stay unchanged.
* :class:`RunReport` — the mutable sink where the executor records
  failures and degradation events; the registry attaches its contents
  to the :class:`~repro.experiments.runner.ExperimentResult` so
  ``summary.json`` can mark incomplete runs.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.journal import RunJournal

__all__ = [
    "EXECUTOR_MODES",
    "ExecutionPolicy",
    "RetryPolicy",
    "RunReport",
    "TaskFailure",
    "completed",
    "current_policy",
    "execution_scope",
    "is_failure",
]

#: Valid ``on_error`` settings for :func:`~repro.engine.executor.map_tasks`.
ON_ERROR_MODES = ("raise", "skip", "retry")

#: Valid ``--executor`` mode strings (``auto`` keeps the historical
#: jobs-based choice between serial and pool).  Lives here rather than
#: in :mod:`repro.engine.backends` so the policy layer never imports
#: backend machinery.
EXECUTOR_MODES = ("auto", "serial", "pool", "dispatch")


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that could not produce a result.

    Attributes
    ----------
    index:
        The task's sweep index (its journal key).
    stage:
        The ``map_tasks`` stage name the task belonged to.
    kind:
        ``"error"`` (the task function raised), ``"timeout"`` (the
        process backend's wall-clock budget expired), ``"crash"``
        (the worker process died and broke the pool), or
        ``"quarantined"`` (the task killed its worker
        ``quarantine_after`` times and is no longer re-issued — the
        poison-task circuit breaker).
    error_type, message:
        Exception class name and message, where one exists.
    attempts:
        How many executions were tried before giving up.
    """

    index: int
    stage: str
    kind: str
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        detail = f": {self.message}" if self.message else ""
        return (
            f"task {self.index} (stage {self.stage!r}) {self.kind} after "
            f"{self.attempts} attempt(s) [{self.error_type}]{detail}"
        )

    def to_dict(self) -> "dict[str, Any]":
        return {
            "index": self.index,
            "stage": self.stage,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


def is_failure(obj: Any) -> bool:
    """Whether a ``map_tasks`` result slot holds a failure record."""
    return isinstance(obj, TaskFailure)


def completed(results) -> list:
    """The successful entries of a ``map_tasks`` result list, in order."""
    return [r for r in results if not is_failure(r)]


def usable_results(results, what: str) -> list:
    """The successful entries, or :class:`RuntimeError` when every slot
    failed — an all-failure sweep has nothing to aggregate and must not
    be rendered as a (vacuously zero) result table.

    Drivers divide their sums by ``len(usable_results(...))`` rather than
    the task count, so an ``on_error=skip`` run with lost tasks still
    reports unbiased means — over the surviving sample — while a clean
    run divides by exactly the task count and stays bit-identical to the
    pre-fault-tolerance aggregation.
    """
    good = completed(results)
    if not good:
        raise RuntimeError(
            f"all {len(list(results))} task(s) of {what} failed; see the "
            "fault report (or re-run with --on-error raise for the first "
            "traceback)"
        )
    return good


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attempt ``k`` (1-based) sleeps
    ``min(base_delay * 2**(k-1), max_delay) * (1 + jitter * u)`` before
    re-running, where ``u`` is a uniform draw seeded from
    ``(task index, attempt)`` — identical runs back off identically, and
    concurrent retries of different tasks de-synchronise.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("backoff delays and jitter must be non-negative")

    def delay(self, index: int, attempt: int) -> float:
        """Backoff before re-running ``index`` after failed ``attempt``."""
        base = min(self.base_delay * 2.0 ** max(attempt - 1, 0), self.max_delay)
        u = random.Random((int(index) << 20) ^ int(attempt)).random()
        return base * (1.0 + self.jitter * u)


class RunReport:
    """Mutable sink for the faults and degradations of one run."""

    def __init__(self) -> None:
        self.failures: "list[TaskFailure]" = []
        self.events: "list[dict[str, Any]]" = []

    def record_failure(self, failure: TaskFailure) -> None:
        self.failures.append(failure)

    def record_event(self, kind: str, detail: str, **extra: Any) -> None:
        self.events.append({"kind": kind, "detail": detail, **extra})

    @property
    def incomplete(self) -> bool:
        """Whether at least one task slot holds no result."""
        return bool(self.failures)

    def to_dict(self) -> "dict[str, Any]":
        doc: "dict[str, Any]" = {}
        if self.failures:
            doc["failures"] = [f.to_dict() for f in self.failures]
        if self.events:
            doc["events"] = list(self.events)
        return doc


@dataclass(frozen=True)
class ExecutionPolicy:
    """All fault-tolerance knobs of one run, bundled.

    ``map_tasks`` consults the ambient policy (installed with
    :func:`execution_scope`) for any knob not passed explicitly, so
    experiment drivers inherit the CLI's ``--on-error``/``--retries``/
    ``--task-timeout``/``--resume`` settings without signature changes.
    """

    on_error: str = "raise"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout: "float | None" = None
    journal: "RunJournal | None" = None
    report: RunReport = field(default_factory=RunReport)
    #: ``--executor`` choice: a mode string from :data:`EXECUTOR_MODES`,
    #: or a configured ExecutionBackend instance (e.g. one
    #: DispatchBackend shared by every stage of a run).
    executor: Any = "auto"
    #: Poison-task circuit breaker (``--quarantine-after``): a task that
    #: kills its worker this many times is quarantined — settled as a
    #: ``TaskFailure(kind="quarantined")`` instead of being re-issued
    #: forever — so one deterministically crashing task can never pin a
    #: run.  Counts persist in the journal across pool rebuilds and
    #: resumes.
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        if isinstance(self.executor, str) and self.executor not in EXECUTOR_MODES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_MODES} or a backend "
                f"instance, got {self.executor!r}"
            )


_ACTIVE_POLICY: "ExecutionPolicy | None" = None


def current_policy() -> "ExecutionPolicy | None":
    """The ambient :class:`ExecutionPolicy`, if one is installed."""
    return _ACTIVE_POLICY


@contextmanager
def execution_scope(policy: "ExecutionPolicy | None"):
    """Install ``policy`` as the ambient execution policy for the block."""
    global _ACTIVE_POLICY
    previous = _ACTIVE_POLICY
    _ACTIVE_POLICY = policy
    try:
        yield policy
    finally:
        _ACTIVE_POLICY = previous
