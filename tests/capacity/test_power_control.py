"""Tests for the power-control capacity algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capacity.greedy import greedy_capacity
from repro.capacity.power_control import power_control_capacity
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import (
    line_network,
    nested_pairs_network,
    paper_random_network,
)

BETA = 2.0
ALPHA = 2.5


class TestCertifiedOutput:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_selected_set_feasible_with_returned_powers(self, seed):
        s, r = paper_random_network(15, rng=seed)
        net = Network(s, r)
        result = power_control_capacity(net, BETA, ALPHA, noise=1e-6)
        if result.selected.size == 0:
            return
        inst = SINRInstance.from_network(
            net, result.power_assignment(net.n), ALPHA, 1e-6
        )
        assert inst.is_feasible(result.selected, BETA)

    def test_powers_aligned_with_selected(self):
        s, r = paper_random_network(10, rng=3)
        net = Network(s, r)
        result = power_control_capacity(net, BETA, ALPHA, noise=1e-6)
        assert result.powers.shape == result.selected.shape
        assert np.all(result.powers > 0)
        assert np.all(np.diff(result.selected) > 0)  # sorted, distinct


class TestSeparation:
    def test_beats_uniform_on_nested_pairs(self):
        """The Moscibroda–Wattenhofer family: uniform-power greedy schedules
        O(1) of the nested links; power control schedules them all.

        Growth 6 with α = 3 makes the whole set simultaneously
        power-feasible (spectral margin > 0) while uniform power still
        serves only the longest link.
        """
        s, r = nested_pairs_network(10, base_length=10.0, growth=6.0)
        net = Network(s, r)
        inst_uniform = SINRInstance.from_network(net, UniformPower(1.0), 3.0, 0.0)
        uniform_size = greedy_capacity(inst_uniform, 1.0).size
        pc = power_control_capacity(net, 1.0, 3.0, 0.0)
        assert uniform_size <= 2
        assert pc.selected.size == 10

    def test_far_apart_links_all_selected(self):
        s, r = line_network(5, spacing=10000.0, link_length=5.0)
        net = Network(s, r)
        pc = power_control_capacity(net, BETA, ALPHA, 0.0)
        assert pc.selected.size == 5


class TestKnobs:
    def test_smaller_delta_selects_fewer(self):
        s, r = paper_random_network(25, rng=4)
        net = Network(s, r)
        small = power_control_capacity(net, BETA, ALPHA, 0.0, delta=0.05)
        large = power_control_capacity(net, BETA, ALPHA, 0.0, delta=1.0)
        assert small.selected.size <= large.selected.size

    def test_repair_loop_yields_feasible_even_with_huge_delta(self):
        s, r = paper_random_network(20, rng=5, area=200.0)
        net = Network(s, r)
        result = power_control_capacity(net, BETA, ALPHA, 1e-6, delta=100.0)
        if result.selected.size:
            inst = SINRInstance.from_network(
                net, result.power_assignment(net.n), ALPHA, 1e-6
            )
            assert inst.is_feasible(result.selected, BETA)

    def test_validation(self):
        s, r = line_network(3)
        net = Network(s, r)
        with pytest.raises(ValueError):
            power_control_capacity(net, 0.0, ALPHA)
        with pytest.raises(ValueError):
            power_control_capacity(net, BETA, ALPHA, delta=0.0)
        with pytest.raises(ValueError):
            power_control_capacity(net, BETA, ALPHA, noise=-1.0)

    def test_power_assignment_wrapper(self):
        s, r = line_network(4, spacing=1000.0)
        net = Network(s, r)
        result = power_control_capacity(net, BETA, ALPHA, 0.0)
        pw = result.power_assignment(net.n)
        vec = pw.powers(net.lengths, ALPHA)
        assert vec.shape == (4,)
        np.testing.assert_allclose(vec[result.selected], result.powers)
