"""Tests for the affectance-greedy capacity algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capacity.greedy import greedy_capacity
from repro.core.network import Network
from repro.core.power import SquareRootPower, UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network

BETA = 2.5


def random_instance(seed: int, n: int = 25) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestFeasibility:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_output_always_feasible(self, seed):
        inst = random_instance(seed)
        chosen = greedy_capacity(inst, BETA)
        assert inst.is_feasible(chosen, BETA)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6), margin=st.sampled_from([0.25, 0.5, 1.0]))
    def test_margin_respected(self, seed, margin):
        from repro.core.affectance import affectance_matrix, total_affectance

        inst = random_instance(seed)
        chosen = greedy_capacity(inst, BETA, margin=margin)
        if chosen.size:
            a = affectance_matrix(inst, BETA, clamped=False)
            mask = np.zeros(inst.n, dtype=bool)
            mask[chosen] = True
            incoming = total_affectance(a, mask)
            assert np.all(incoming[mask] <= margin + 1e-9)

    def test_maximal_at_full_margin(self):
        """With margin=1, no excluded link can be added without breaking
        feasibility."""
        inst = random_instance(7)
        chosen = greedy_capacity(inst, BETA, margin=1.0)
        chosen_set = set(chosen.tolist())
        for k in range(inst.n):
            if k in chosen_set:
                continue
            trial = np.array(sorted(chosen_set | {k}))
            assert not inst.is_feasible(trial, BETA)


class TestBehaviour:
    def test_far_apart_links_all_chosen(self):
        s, r = line_network(6, spacing=5000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        assert greedy_capacity(inst, BETA).size == 6

    def test_noise_blocked_links_rejected(self):
        gains = np.array([[1.0, 0.0], [0.0, 100.0]])
        inst = SINRInstance(gains, noise=1.0)
        chosen = greedy_capacity(inst, beta=2.0)  # link 0 has S̄/ν = 1 < 2
        assert chosen.tolist() == [1]

    def test_smaller_margin_smaller_sets_on_average(self):
        """Per-instance monotonicity in the margin does NOT hold (the
        admission order interacts with the budget), but the ensemble
        average must drop with the budget."""
        tight_total = loose_total = 0
        for seed in range(15):
            inst = random_instance(seed)
            tight_total += greedy_capacity(inst, BETA, margin=0.5).size
            loose_total += greedy_capacity(inst, BETA, margin=1.0).size
        assert tight_total < loose_total

    def test_random_order_reproducible(self):
        inst = random_instance(3)
        a = greedy_capacity(inst, BETA, order="random", rng=np.random.default_rng(5))
        b = greedy_capacity(inst, BETA, order="random", rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_explicit_order(self):
        inst = random_instance(4)
        order = np.arange(inst.n)[::-1]
        chosen = greedy_capacity(inst, BETA, order=order)
        assert inst.is_feasible(chosen, BETA)

    def test_weighted_prefers_heavy_links(self):
        """Two mutually exclusive links: the heavy one must be chosen."""
        # Strong mutual interference so only one can win.
        gains = np.array([[4.0, 4.0], [4.0, 4.0]])
        inst = SINRInstance(gains, noise=0.0)
        w_light_first = greedy_capacity(inst, 1.5, weights=np.array([10.0, 1.0]))
        assert w_light_first.tolist() == [0]
        w_heavy_second = greedy_capacity(inst, 1.5, weights=np.array([1.0, 10.0]))
        assert w_heavy_second.tolist() == [1]

    def test_sqrt_power_instance_works(self):
        s, r = paper_random_network(20, rng=11)
        net = Network(s, r)
        inst = SINRInstance.from_network(net, SquareRootPower(2.0), 2.2, 4e-7)
        chosen = greedy_capacity(inst, BETA)
        assert inst.is_feasible(chosen, BETA)
        assert chosen.size > 0


class TestValidation:
    def test_bad_margin(self):
        inst = random_instance(0)
        with pytest.raises(ValueError):
            greedy_capacity(inst, BETA, margin=0.0)
        with pytest.raises(ValueError):
            greedy_capacity(inst, BETA, margin=1.5)

    def test_bad_order(self):
        inst = random_instance(0)
        with pytest.raises(ValueError):
            greedy_capacity(inst, BETA, order="nope")
        with pytest.raises(ValueError):
            greedy_capacity(inst, BETA, order=np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            greedy_capacity(inst, BETA, order="random")  # rng missing

    def test_bad_weights(self):
        inst = random_instance(0)
        with pytest.raises(ValueError):
            greedy_capacity(inst, BETA, weights=np.full(inst.n, -1.0))
        with pytest.raises(ValueError):
            greedy_capacity(inst, BETA, weights=np.ones(3))
