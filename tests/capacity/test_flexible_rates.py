"""Tests for flexible-data-rate capacity maximization."""

import numpy as np
import pytest

from repro.capacity.flexible_rates import flexible_rate_capacity
from repro.capacity.greedy import greedy_capacity
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network
from repro.utility.binary import BinaryUtility
from repro.utility.shannon import ShannonUtility
from repro.utility.weighted import WeightedUtility


@pytest.fixture
def instance():
    s, r = paper_random_network(30, rng=21)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestShannonObjective:
    def test_achieves_positive_utility(self, instance):
        result = flexible_rate_capacity(instance, ShannonUtility(instance.n))
        assert result.utility > 0.0
        assert result.selected.size > 0
        assert result.level > 0.0
        assert len(result.levels_tried) == 16

    def test_reported_utility_matches_schedule(self, instance):
        profile = ShannonUtility(instance.n)
        result = flexible_rate_capacity(instance, profile)
        mask = np.zeros(instance.n, dtype=bool)
        mask[result.selected] = True
        sinr = instance.sinr(mask)
        assert result.utility == pytest.approx(float(profile(sinr)[mask].sum()))

    def test_beats_all_links_transmitting(self, instance):
        """Scheduling everyone is usually terrible for Shannon capacity on
        dense instances; the level algorithm must do at least as well."""
        profile = ShannonUtility(instance.n)
        everyone = float(profile(instance.sinr(np.ones(instance.n, dtype=bool))).sum())
        result = flexible_rate_capacity(instance, profile)
        assert result.utility >= everyone * 0.9

    def test_more_levels_never_much_worse(self, instance):
        profile = ShannonUtility(instance.n)
        few = flexible_rate_capacity(instance, profile, num_levels=4).utility
        many = flexible_rate_capacity(instance, profile, num_levels=32).utility
        assert many >= few * 0.8


class TestThresholdObjectives:
    def test_binary_comparable_to_direct_greedy(self, instance):
        beta = 2.5
        result = flexible_rate_capacity(instance, BinaryUtility(instance.n, beta))
        direct = greedy_capacity(instance, beta).size
        assert result.utility >= 0.5 * direct

    def test_weighted_profile(self, instance):
        w = np.linspace(0.5, 2.0, instance.n)
        result = flexible_rate_capacity(instance, WeightedUtility(w, 2.5))
        assert result.utility > 0.0


class TestValidation:
    def test_size_mismatch(self, instance):
        with pytest.raises(ValueError):
            flexible_rate_capacity(instance, ShannonUtility(instance.n + 1))

    def test_bad_levels(self, instance):
        with pytest.raises(ValueError):
            flexible_rate_capacity(instance, ShannonUtility(instance.n), num_levels=0)

    def test_zero_noise_levels_finite(self):
        s, r = paper_random_network(8, rng=2)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        result = flexible_rate_capacity(inst, ShannonUtility(8))
        assert np.all(np.isfinite(result.levels_tried))
        assert result.utility > 0.0
