"""Tests for exact branch & bound and the local-search estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capacity.greedy import greedy_capacity
from repro.capacity.optimum import local_search_capacity, optimal_capacity_bruteforce
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network

BETA = 2.5


def random_instance(seed: int, n: int = 12) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed, area=300.0)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


def exhaustive_optimum(inst: SINRInstance, beta: float) -> int:
    """Literal enumeration of all subsets (n <= 12)."""
    best = 0
    n = inst.n
    for bits in range(1, 1 << n):
        idx = np.array([i for i in range(n) if bits >> i & 1])
        if idx.size > best and inst.is_feasible(idx, beta):
            best = idx.size
    return best


class TestBruteForce:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_matches_exhaustive_enumeration(self, seed):
        inst = random_instance(seed, n=9)
        bb = optimal_capacity_bruteforce(inst, BETA)
        assert inst.is_feasible(bb, BETA)
        assert bb.size == exhaustive_optimum(inst, BETA)

    def test_weighted_objective(self):
        """With weights, B&B maximizes weight, not cardinality."""
        # Three links; 0 and 1 conflict; 2 independent.
        gains = np.array(
            [
                [4.0, 4.0, 0.0],
                [4.0, 4.0, 0.0],
                [0.0, 0.0, 4.0],
            ]
        )
        inst = SINRInstance(gains, noise=0.0)
        w = np.array([5.0, 1.0, 1.0])
        out = optimal_capacity_bruteforce(inst, 1.5, weights=w)
        assert set(out.tolist()) == {0, 2}

    def test_all_feasible_instance(self):
        s, r = line_network(6, spacing=5000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(1.0), 2.2, 0.0)
        assert optimal_capacity_bruteforce(inst, BETA).size == 6

    def test_size_guard(self):
        inst = random_instance(0, n=12)
        with pytest.raises(ValueError):
            optimal_capacity_bruteforce(inst, BETA, max_n=10)

    def test_noise_blocked_excluded(self):
        gains = np.array([[1.0, 0.0], [0.0, 100.0]])
        inst = SINRInstance(gains, noise=1.0)
        out = optimal_capacity_bruteforce(inst, 2.0)
        assert out.tolist() == [1]


class TestLocalSearch:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_feasible_and_at_least_greedy(self, seed):
        inst = random_instance(seed, n=20)
        ls = local_search_capacity(inst, BETA, rng=seed, restarts=4)
        assert inst.is_feasible(ls, BETA)
        assert ls.size >= greedy_capacity(inst, BETA).size

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_close_to_exact_on_small_instances(self, seed):
        inst = random_instance(seed, n=11)
        exact = optimal_capacity_bruteforce(inst, BETA).size
        ls = local_search_capacity(inst, BETA, rng=seed + 1, restarts=12).size
        assert ls <= exact
        assert ls >= exact - 1  # empirically tight on this family

    def test_reproducible(self):
        inst = random_instance(5, n=18)
        a = local_search_capacity(inst, BETA, rng=42, restarts=3)
        b = local_search_capacity(inst, BETA, rng=42, restarts=3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_restarts(self):
        inst = random_instance(0)
        with pytest.raises(ValueError):
            local_search_capacity(inst, BETA, restarts=0)

    def test_more_restarts_never_worse(self):
        inst = random_instance(9, n=18)
        few = local_search_capacity(inst, BETA, rng=1, restarts=1).size
        # Different restarts use different random draws, so compare via a
        # shared-seed maximum property: max over more restarts from the
        # same starting stream can only... (streams differ; assert weaker)
        many = local_search_capacity(inst, BETA, rng=1, restarts=8).size
        assert many >= few - 1
