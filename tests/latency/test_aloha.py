"""Tests for ALOHA-style contention resolution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network
from repro.latency.aloha import aloha_latency

BETA = 2.5


def random_instance(seed: int, n: int = 15) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestNonFading:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_everyone_served(self, seed):
        inst = random_instance(seed)
        result = aloha_latency(inst, BETA, rng=seed)
        assert np.all(result.served_at >= 0)
        assert result.latency == result.schedule.length
        assert 0.0 < result.q_used <= 0.5

    def test_served_slot_really_served(self):
        inst = random_instance(2)
        result = aloha_latency(inst, BETA, rng=3)
        for i in range(inst.n):
            slot = result.schedule.slots[result.served_at[i]]
            assert i in slot.tolist()
            assert bool(inst.successes(slot, BETA)[i])

    def test_fixed_probability(self):
        inst = random_instance(4)
        result = aloha_latency(inst, BETA, rng=5, q=0.25)
        assert result.q_used == 0.25

    def test_adaptive_mode_finishes(self):
        inst = random_instance(6)
        result = aloha_latency(inst, BETA, rng=7, q="adaptive")
        assert np.all(result.served_at >= 0)

    def test_isolated_links_fast(self):
        s, r = line_network(4, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        result = aloha_latency(inst, BETA, rng=8)
        # Auto probability is 1/2 (no contention); expect ~2 slots per link.
        assert result.latency < 40

    def test_reproducible(self):
        inst = random_instance(9)
        a = aloha_latency(inst, BETA, rng=11)
        b = aloha_latency(inst, BETA, rng=11)
        assert a.latency == b.latency

    def test_validation(self):
        inst = random_instance(0)
        with pytest.raises(ValueError):
            aloha_latency(inst, BETA, q=0.0)
        with pytest.raises(ValueError):
            aloha_latency(inst, BETA, q=0.9)
        with pytest.raises(ValueError):
            aloha_latency(inst, BETA, model="psychic")
        with pytest.raises(ValueError):
            aloha_latency(inst, BETA, repeats=0)

    def test_noise_blocked_rejected(self):
        gains = np.array([[1.0, 0.0], [0.0, 100.0]])
        inst = SINRInstance(gains, noise=1.0)
        with pytest.raises(ValueError):
            aloha_latency(inst, beta=2.0)


class TestRayleigh:
    def test_physical_slots_are_protocol_steps_times_repeats(self):
        inst = random_instance(12, n=10)
        result = aloha_latency(inst, BETA, rng=13, model="rayleigh", repeats=4)
        assert result.latency == result.protocol_steps * 4

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_everyone_served_rayleigh(self, seed):
        inst = random_instance(seed, n=10)
        result = aloha_latency(inst, BETA, rng=seed, model="rayleigh")
        assert np.all(result.served_at >= 0)

    def test_transformation_protocol_steps_comparable(self):
        """Protocol steps under the 4-repeat transformation should not be
        (much) worse than the non-fading protocol — the Section-4 claim."""
        inst = random_instance(14)
        nf_steps = np.mean(
            [aloha_latency(inst, BETA, rng=t).protocol_steps for t in range(8)]
        )
        ray_steps = np.mean(
            [
                aloha_latency(inst, BETA, rng=100 + t, model="rayleigh").protocol_steps
                for t in range(8)
            ]
        )
        assert ray_steps <= 2.0 * nf_steps
