"""Tests for the Schedule data type."""

import numpy as np
import pytest

from repro.channel import NonFadingChannel, RayleighChannel
from repro.core.sinr import SINRInstance
from repro.latency.schedule import Schedule, replay_schedule, validate_schedule


@pytest.fixture
def instance():
    # Links 0 and 1 conflict hard; link 2 is independent.
    gains = np.array(
        [
            [4.0, 4.0, 0.0],
            [4.0, 4.0, 0.0],
            [0.0, 0.0, 4.0],
        ]
    )
    return SINRInstance(gains, noise=0.1)


class TestScheduleType:
    def test_from_lists(self):
        s = Schedule.from_lists([[0, 2], [1]], n=3)
        assert s.length == 2 and len(s) == 2
        assert s.slots[0].tolist() == [0, 2]

    def test_covered_and_covers_all(self):
        s = Schedule.from_lists([[0], [2]], n=3)
        assert s.covered.tolist() == [True, False, True]
        assert not s.covers_all()
        assert Schedule.from_lists([[0, 1], [2]], n=3).covers_all()

    def test_slot_of(self):
        s = Schedule.from_lists([[0], [1, 2], [1]], n=3)
        assert s.slot_of(1) == 1
        assert s.slot_of(0) == 0
        assert Schedule.from_lists([[0]], n=2).slot_of(1) is None

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            Schedule.from_lists([[0, 3]], n=3)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Schedule.from_lists([[1, 1]], n=3)

    def test_first_slots_all_links(self):
        s = Schedule.from_lists([[0], [1, 2], [1]], n=4)
        assert s.first_slots().tolist() == [0, 1, 1, -1]

    def test_first_slots_subset(self):
        s = Schedule.from_lists([[0], [1, 2], [1]], n=4)
        assert s.first_slots([2, 3]).tolist() == [1, -1]

    def test_first_slots_agrees_with_slot_of(self):
        s = Schedule.from_lists([[3], [1, 2], [0, 1], []], n=5)
        first = s.first_slots()
        for link in range(5):
            expected = s.slot_of(link)
            assert first[link] == (-1 if expected is None else expected)

    def test_slot_of_empty_schedule(self):
        s = Schedule.from_lists([], n=3)
        assert s.slot_of(0) is None
        assert s.first_slots().tolist() == [-1, -1, -1]


class TestValidateSchedule:
    def test_valid_split(self, instance):
        s = Schedule.from_lists([[0, 2], [1]], n=3)
        assert validate_schedule(instance, s, beta=1.5)

    def test_conflicting_slot_invalid(self, instance):
        s = Schedule.from_lists([[0, 1], [2]], n=3)
        assert not validate_schedule(instance, s, beta=1.5)

    def test_uncovered_link_fails_require_all(self, instance):
        s = Schedule.from_lists([[0], [1]], n=3)
        assert not validate_schedule(instance, s, beta=1.5)
        assert validate_schedule(instance, s, beta=1.5, require_all=False)

    def test_retry_slots_count_once_successful(self, instance):
        """A link scheduled twice passes if at least one slot works."""
        s = Schedule.from_lists([[0, 1], [0], [1], [2]], n=3)
        assert validate_schedule(instance, s, beta=1.5)

    def test_size_mismatch(self, instance):
        s = Schedule.from_lists([[0]], n=2)
        with pytest.raises(ValueError):
            validate_schedule(instance, s, beta=1.0)

    def test_empty_slots_ignored(self, instance):
        s = Schedule.from_lists([[], [0, 2], [], [1]], n=3)
        assert validate_schedule(instance, s, beta=1.5)


class TestReplaySchedule:
    def test_deterministic_replay(self, instance):
        s = Schedule.from_lists([[0, 1], [0, 2], [1]], n=3)
        served, served_at = replay_schedule(NonFadingChannel(instance, 1.5), s)
        assert served.tolist() == [True, True, True]
        # Slot 0 is a hard conflict; first successes land in slots 1, 2, 1.
        assert served_at.tolist() == [1, 2, 1]

    def test_unscheduled_links_unserved(self, instance):
        s = Schedule.from_lists([[0]], n=3)
        served, served_at = replay_schedule(NonFadingChannel(instance, 1.5), s)
        assert served.tolist() == [True, False, False]
        assert served_at.tolist() == [0, -1, -1]

    def test_matches_per_slot_realize(self, instance):
        """Batched replay equals the slot-by-slot loop, same generator."""
        s = Schedule.from_lists([[0, 2], [1], [0, 1, 2], [2]], n=3)
        ch = RayleighChannel(instance, 1.5)
        served, served_at = replay_schedule(ch, s, np.random.default_rng(3))
        gen = np.random.default_rng(3)
        expect = np.full(3, -1, dtype=np.int64)
        for t, slot in enumerate(s.slots):
            mask = np.zeros(3, dtype=bool)
            mask[slot] = True
            ok = ch.realize(mask, gen) & mask
            fresh = ok & (expect < 0)
            expect[fresh] = t
        assert served_at.tolist() == expect.tolist()
        assert served.tolist() == (expect >= 0).tolist()

    def test_size_mismatch(self, instance):
        s = Schedule.from_lists([[0]], n=2)
        with pytest.raises(ValueError):
            replay_schedule(NonFadingChannel(instance, 1.5), s)
