"""Tests for multi-hop scheduling."""

import numpy as np
import pytest

from repro.latency.multihop import (
    MultiHopRequest,
    multihop_latency,
    multihop_lower_bound,
)

BETA = 2.0
ALPHA = 2.5


def straight_path(start, end, hops):
    """Equally spaced relay path from start to end."""
    return MultiHopRequest(
        np.linspace(np.asarray(start, float), np.asarray(end, float), hops + 1)
    )


class TestMultiHopRequest:
    def test_hop_accessors(self):
        req = straight_path([0, 0], [30, 0], hops=3)
        assert req.num_hops == 3
        s, r = req.hop(1)
        np.testing.assert_allclose(s, [10.0, 0.0])
        np.testing.assert_allclose(r, [20.0, 0.0])

    def test_hop_out_of_range(self):
        req = straight_path([0, 0], [10, 0], hops=1)
        with pytest.raises(IndexError):
            req.hop(1)

    def test_too_short_path_rejected(self):
        with pytest.raises(ValueError):
            MultiHopRequest(np.array([[0.0, 0.0]]))


class TestMultihopLatency:
    def test_single_isolated_request(self):
        req = straight_path([0, 0], [30, 0], hops=3)
        result = multihop_latency([req], beta=BETA, alpha=ALPHA, noise=0.0)
        # One hop per slot minimum; isolated request: exactly 3 slots.
        assert result.makespan == 3
        assert result.finish_times.tolist() == [3]
        assert result.hops_total == 3

    def test_parallel_far_requests(self):
        """Far-apart requests should pipeline in parallel: makespan equals
        the longest request, not the sum."""
        reqs = [
            straight_path([0, 0], [30, 0], hops=3),
            straight_path([100000, 0], [100030, 0], hops=3),
        ]
        result = multihop_latency(reqs, beta=BETA, alpha=ALPHA, noise=0.0)
        assert result.makespan == 3

    def test_interfering_requests_take_longer(self):
        reqs = [
            straight_path([0, 0], [30, 0], hops=3),
            straight_path([0, 5], [30, 5], hops=3),  # right next to it
        ]
        result = multihop_latency(reqs, beta=BETA, alpha=ALPHA, noise=0.0)
        assert result.makespan > 3  # hops must serialize at least partly
        assert np.all(result.finish_times > 0)

    def test_rayleigh_mode_completes(self):
        reqs = [
            straight_path([0, 0], [30, 0], hops=2),
            straight_path([500, 0], [530, 0], hops=2),
        ]
        result = multihop_latency(
            reqs, beta=BETA, alpha=ALPHA, noise=0.0, model="rayleigh", rng=0
        )
        assert np.all(result.finish_times > 0)
        assert result.makespan >= 2

    def test_finish_times_bounded_by_makespan(self):
        reqs = [straight_path([0, 0], [40, 0], hops=4),
                straight_path([10, 50], [50, 50], hops=2)]
        result = multihop_latency(reqs, beta=BETA, alpha=ALPHA, noise=0.0)
        assert result.finish_times.max() == result.makespan

    def test_lower_bound_respected(self):
        reqs = [
            straight_path([0, 0], [40, 0], hops=4),
            straight_path([10, 50], [50, 50], hops=2),
            straight_path([200, 0], [230, 0], hops=3),
        ]
        lb = multihop_lower_bound(reqs)
        assert lb == 4  # dilation dominates here
        result = multihop_latency(reqs, beta=BETA, alpha=ALPHA, noise=0.0)
        assert result.makespan >= lb

    def test_lower_bound_congestion_side(self):
        # 1 long request + congestion bound: dilation 6 vs avg hops 6/1.
        reqs = [straight_path([0, 0], [60, 0], hops=6)]
        assert multihop_lower_bound(reqs) == 6
        with pytest.raises(ValueError):
            multihop_lower_bound([])

    def test_validation(self):
        with pytest.raises(ValueError):
            multihop_latency([], beta=BETA, alpha=ALPHA)
        req = straight_path([0, 0], [10, 0], hops=1)
        with pytest.raises(ValueError):
            multihop_latency([req], beta=0.0, alpha=ALPHA)
        with pytest.raises(ValueError):
            multihop_latency([req], beta=BETA, alpha=ALPHA, model="warp")
