"""Block-size equivalence of the shared slot-loop engine.

The engine pre-draws per-slot randomness positionally, so every
scheduler must produce an *identical* trajectory for every
``slot_block`` — the block size is purely a throughput knob and
``slot_block=1`` is the sequential reference.  These tests pin that
contract across all four schedulers and the full channel zoo
(deterministic, Rayleigh, Nakagami, block fading with multi-slot
coherence, whose chunk alignment is the subtlest case).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network
from repro.latency.aloha import aloha_latency
from repro.latency.decay import decay_latency
from repro.latency.multihop import MultiHopRequest, multihop_latency
from repro.latency.repeated_max import repeated_max_latency

BETA = 2.5

CHANNELS = ["nonfading", "rayleigh", "nakagami:m=2", "block:coherence=5"]
BLOCKS = [7, 64]


def random_instance(seed: int, n: int = 12) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


def relay_paths(seed: int, count: int = 4):
    gen = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        start = gen.uniform(0.0, 500.0, size=2)
        end = gen.uniform(0.0, 500.0, size=2)
        hops = int(gen.integers(2, 5))
        requests.append(
            MultiHopRequest(np.linspace(start, end, hops + 1))
        )
    return requests


def assert_same_schedule(a, b):
    """Byte-level identity of two Schedule objects."""
    assert a.schedule.length == b.schedule.length
    for sa, sb in zip(a.schedule.slots, b.schedule.slots):
        np.testing.assert_array_equal(sa, sb)
    np.testing.assert_array_equal(a.served_at, b.served_at)
    assert a.latency == b.latency


class TestSingleHopEquivalence:
    """aloha / decay / repeated_max: identical Schedule, served_at, and
    latency at every block size."""

    @pytest.mark.parametrize("channel", CHANNELS)
    @pytest.mark.parametrize("block", BLOCKS)
    def test_aloha(self, channel, block):
        inst = random_instance(21)
        ref = aloha_latency(inst, BETA, rng=5, channel=channel, slot_block=1)
        out = aloha_latency(inst, BETA, rng=5, channel=channel, slot_block=block)
        assert_same_schedule(ref, out)
        assert ref.q_used == out.q_used
        assert ref.protocol_steps == out.protocol_steps

    @pytest.mark.parametrize("channel", CHANNELS)
    @pytest.mark.parametrize("block", BLOCKS)
    def test_decay(self, channel, block):
        inst = random_instance(22)
        ref = decay_latency(inst, BETA, rng=6, channel=channel, slot_block=1)
        out = decay_latency(inst, BETA, rng=6, channel=channel, slot_block=block)
        assert_same_schedule(ref, out)

    @pytest.mark.parametrize("channel", CHANNELS)
    @pytest.mark.parametrize("block", BLOCKS)
    def test_repeated_max(self, channel, block):
        inst = random_instance(23)
        ref = repeated_max_latency(
            inst, BETA, rng=7, channel=channel, slot_block=1
        )
        out = repeated_max_latency(
            inst, BETA, rng=7, channel=channel, slot_block=block
        )
        assert_same_schedule(ref, out)


class TestMultihopEquivalence:
    @pytest.mark.parametrize("channel", CHANNELS)
    @pytest.mark.parametrize("block", BLOCKS)
    def test_multihop(self, channel, block):
        requests = relay_paths(31)
        ref = multihop_latency(
            requests, beta=2.0, alpha=2.5, noise=0.0, channel=channel,
            rng=9, slot_block=1,
        )
        out = multihop_latency(
            requests, beta=2.0, alpha=2.5, noise=0.0, channel=channel,
            rng=9, slot_block=block,
        )
        assert ref.makespan == out.makespan
        np.testing.assert_array_equal(ref.finish_times, out.finish_times)
        assert ref.hops_total == out.hops_total


class TestBlockOneIsDefault:
    """``slot_block=1`` degenerates to the scheduler's default
    (unspecified block) trajectory — the engine's default block only
    changes grouping, never draws."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_aloha_default_equals_block_one(self, seed):
        inst = random_instance(seed % 97, n=10)
        ref = aloha_latency(inst, BETA, rng=seed, channel="rayleigh",
                            slot_block=1)
        out = aloha_latency(inst, BETA, rng=seed, channel="rayleigh")
        assert_same_schedule(ref, out)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_decay_default_equals_block_one(self, seed):
        inst = random_instance(seed % 89, n=10)
        ref = decay_latency(inst, BETA, rng=seed, channel="block:coherence=3",
                            slot_block=1)
        out = decay_latency(inst, BETA, rng=seed, channel="block:coherence=3")
        assert_same_schedule(ref, out)
