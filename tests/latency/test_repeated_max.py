"""Tests for the repeated single-slot maximization scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network
from repro.latency.repeated_max import repeated_max_latency
from repro.latency.schedule import validate_schedule

BETA = 2.5


def random_instance(seed: int, n: int = 20) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestNonFading:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_schedule_serves_everyone(self, seed):
        inst = random_instance(seed)
        result = repeated_max_latency(inst, BETA)
        assert result.schedule.covers_all()
        assert validate_schedule(inst, result.schedule, BETA)
        assert np.all(result.served_at >= 0)
        assert result.latency == result.schedule.length

    def test_served_at_slot_consistent(self):
        inst = random_instance(3)
        result = repeated_max_latency(inst, BETA)
        for i in range(inst.n):
            slot = result.schedule.slots[result.served_at[i]]
            assert i in slot

    def test_independent_links_one_slot(self):
        s, r = line_network(5, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        assert repeated_max_latency(inst, BETA).latency == 1

    def test_mutually_exclusive_links_n_slots(self):
        n = 4
        gains = np.full((n, n), 5.0)
        inst = SINRInstance(gains, noise=0.0)
        # At β=2 any two simultaneous links fail: SINR = 5/5 = 1 < 2.
        result = repeated_max_latency(inst, beta=2.0)
        assert result.latency == n

    def test_noise_blocked_link_raises(self):
        gains = np.array([[1.0, 0.0], [0.0, 100.0]])
        inst = SINRInstance(gains, noise=1.0)
        with pytest.raises(ValueError):
            repeated_max_latency(inst, beta=2.0)

    def test_custom_algorithm_used(self):
        inst = random_instance(4, n=6)
        calls = []

        def one_at_a_time(sub, beta):
            calls.append(sub.n)
            return np.array([0])

        result = repeated_max_latency(inst, BETA, algorithm=one_at_a_time)
        assert result.latency == 6
        assert calls == [6, 5, 4, 3, 2, 1]

    def test_infeasible_algorithm_output_repaired(self):
        """An algorithm returning an infeasible set must not wedge the
        scheduler."""
        n = 3
        gains = np.full((n, n), 5.0)
        inst = SINRInstance(gains, noise=0.0)

        def bad_algorithm(sub, beta):
            return np.arange(sub.n)  # everything at once — infeasible

        result = repeated_max_latency(inst, beta=2.0, algorithm=bad_algorithm)
        assert result.schedule.covers_all()
        assert np.all(result.served_at >= 0)


class TestRayleigh:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_everyone_eventually_served(self, seed):
        inst = random_instance(seed, n=15)
        result = repeated_max_latency(inst, BETA, model="rayleigh", rng=seed)
        assert np.all(result.served_at >= 0)
        assert result.latency >= 1

    def test_stochastic_latency_at_least_deterministic_typically(self):
        """Across seeds, mean Rayleigh latency >= non-fading latency."""
        inst = random_instance(8, n=15)
        nf = repeated_max_latency(inst, BETA).latency
        lat = [
            repeated_max_latency(inst, BETA, model="rayleigh", rng=t).latency
            for t in range(10)
        ]
        assert np.mean(lat) >= nf

    def test_reproducible(self):
        inst = random_instance(9, n=12)
        a = repeated_max_latency(inst, BETA, model="rayleigh", rng=5)
        b = repeated_max_latency(inst, BETA, model="rayleigh", rng=5)
        assert a.latency == b.latency
        assert np.array_equal(a.served_at, b.served_at)

    def test_max_slots_guard(self):
        inst = random_instance(10, n=10)
        with pytest.raises(RuntimeError):
            repeated_max_latency(
                inst, BETA, model="rayleigh", rng=0, max_slots=1,
                algorithm=lambda sub, b: np.array([], dtype=int),
            )

    def test_unknown_model(self):
        inst = random_instance(0, n=5)
        with pytest.raises(ValueError):
            repeated_max_latency(inst, BETA, model="quantum")
