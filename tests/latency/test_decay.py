"""Tests for the decay (probability-sweeping) latency protocol."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network
from repro.latency.decay import decay_latency

BETA = 2.5


def random_instance(seed: int, n: int = 15) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestNonFading:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_everyone_served(self, seed):
        inst = random_instance(seed)
        result = decay_latency(inst, BETA, rng=seed)
        assert np.all(result.served_at >= 0)
        assert result.latency == result.schedule.length

    def test_served_slot_really_served(self):
        inst = random_instance(3)
        result = decay_latency(inst, BETA, rng=1)
        for i in range(inst.n):
            slot = result.schedule.slots[result.served_at[i]]
            assert i in slot.tolist()
            assert bool(inst.successes(slot, BETA)[i])

    def test_no_knowledge_needed(self):
        """Unlike aloha(q='auto'), decay needs no affectance estimate —
        only n.  It must still finish on a contention-heavy instance."""
        s, r = paper_random_network(30, rng=4, area=300.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)
        result = decay_latency(inst, BETA, rng=5)
        assert np.all(result.served_at >= 0)

    def test_isolated_links_fast(self):
        s, r = line_network(4, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        result = decay_latency(inst, BETA, rng=6)
        # One sweep is 3 slots; a handful of sweeps should finish.
        assert result.latency <= 10 * 3

    def test_reproducible(self):
        inst = random_instance(7)
        assert (
            decay_latency(inst, BETA, rng=8).latency
            == decay_latency(inst, BETA, rng=8).latency
        )

    def test_validation(self):
        inst = random_instance(0)
        with pytest.raises(ValueError):
            decay_latency(inst, 0.0)
        with pytest.raises(ValueError):
            decay_latency(inst, BETA, model="warp")
        with pytest.raises(ValueError):
            decay_latency(inst, BETA, repeats=0)
        gains = np.array([[1.0, 0.0], [0.0, 100.0]])
        blocked = SINRInstance(gains, noise=1.0)
        with pytest.raises(ValueError):
            decay_latency(blocked, beta=2.0)

    def test_sweep_cap(self):
        inst = random_instance(9)
        with pytest.raises(RuntimeError):
            decay_latency(inst, BETA, rng=10, max_sweeps=0)


class TestRayleigh:
    def test_everyone_served(self):
        inst = random_instance(11, n=10)
        result = decay_latency(inst, BETA, rng=12, model="rayleigh")
        assert np.all(result.served_at >= 0)

    def test_physical_slots_multiple_of_repeats_per_step(self):
        inst = random_instance(13, n=10)
        result = decay_latency(inst, BETA, rng=14, model="rayleigh", repeats=4)
        assert result.latency % 4 == 0
        assert result.latency == 4 * (result.latency // 4)
