"""Tests for the link-weighted capacity game (Section 2's weighted family)."""

import numpy as np
import pytest

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network
from repro.learning.game import CapacityGame

BETA = 0.5


@pytest.fixture
def instance():
    s, r = paper_random_network(25, rng=88, min_length=0.0, max_length=100.0)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.1, 0.0)


class TestWeightedGame:
    def test_unit_weights_match_binary_game(self, instance):
        binary = CapacityGame(instance, BETA, model="nonfading", rng=1).play(30)
        weighted = CapacityGame(
            instance, BETA, model="nonfading", rng=1, weights=np.ones(instance.n)
        ).play(30)
        np.testing.assert_array_equal(binary.actions, weighted.actions)
        np.testing.assert_allclose(
            weighted.weighted_values, weighted.success_counts.astype(float)
        )

    def test_weighted_values_consistent(self, instance):
        w = np.linspace(0.5, 3.0, instance.n)
        res = CapacityGame(
            instance, BETA, model="rayleigh", rng=2, weights=w
        ).play(40)
        manual = (res.actions & res.send_success) @ w
        np.testing.assert_allclose(res.weighted_values, manual)

    def test_binary_game_has_no_weighted_values(self, instance):
        res = CapacityGame(instance, BETA, rng=3).play(10)
        assert res.weights is None and res.weighted_values is None

    def test_heavy_links_send_more(self, instance):
        """After convergence, heavily weighted links should transmit at
        least as often on average — idling costs them more."""
        w = np.ones(instance.n)
        heavy = np.arange(instance.n) < 5
        w[heavy] = 10.0
        res = CapacityGame(
            instance, BETA, model="nonfading", rng=4, weights=w
        ).play(150)
        tail = res.actions[-50:]
        assert tail[:, heavy].mean() >= tail[:, ~heavy].mean() - 0.05

    def test_weighted_regret_scales(self, instance):
        w = np.full(instance.n, 2.0)
        res_w = CapacityGame(
            instance, BETA, model="nonfading", rng=5, weights=w
        ).play(30)
        res_b = CapacityGame(instance, BETA, model="nonfading", rng=5).play(30)
        # Identical play (same loss ratios), doubled rewards → doubled regret.
        np.testing.assert_array_equal(res_w.actions, res_b.actions)
        np.testing.assert_allclose(
            res_w.realized_regret(), 2.0 * res_b.realized_regret()
        )

    def test_validation(self, instance):
        with pytest.raises(ValueError):
            CapacityGame(instance, BETA, weights=np.zeros(instance.n))
        with pytest.raises(ValueError):
            CapacityGame(instance, BETA, weights=np.ones(3))
        with pytest.raises(ValueError):
            CapacityGame(instance, BETA, weights=np.full(instance.n, np.inf))
