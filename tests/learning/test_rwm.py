"""Tests for the Randomized Weighted Majority learner."""

import math

import numpy as np
import pytest

from repro.learning.rwm import IDLE, LOSS_IDLE, SEND, RWMLearner


class TestMechanics:
    def test_initial_state(self):
        l = RWMLearner(rng=0)
        assert l.t == 0
        assert l.send_probability == pytest.approx(0.5)
        assert l.eta == pytest.approx(math.sqrt(0.5))

    def test_update_shifts_weights(self):
        l = RWMLearner(rng=0)
        l.update(loss_idle=1.0, loss_send=0.0)
        assert l.send_probability > 0.5
        l2 = RWMLearner(rng=0)
        l2.update(loss_idle=0.0, loss_send=1.0)
        assert l2.send_probability < 0.5

    def test_equal_losses_keep_balance(self):
        l = RWMLearner(rng=0)
        for _ in range(10):
            l.update(0.5, 0.5)
        assert l.send_probability == pytest.approx(0.5)

    def test_paper_loss_table(self):
        l = RWMLearner(rng=0)
        l.observe_outcome(send_would_succeed=True)  # losses (0.5, 0)
        assert l.send_probability > 0.5
        l2 = RWMLearner(rng=0)
        l2.observe_outcome(send_would_succeed=False)  # losses (0.5, 1)
        assert l2.send_probability < 0.5

    def test_eta_doubling_schedule(self):
        """η multiplied by sqrt(0.5) when t crosses each power of 2."""
        l = RWMLearner(rng=0)
        etas = []
        for _ in range(17):
            l.update(0.0, 0.0)
            etas.append(l.eta)
        # t: 1..17; decays fire at t=3, 5, 9, 17 (first step past 2,4,8,16).
        e0 = math.sqrt(0.5)
        assert etas[0] == pytest.approx(e0)
        assert etas[2] == pytest.approx(e0 * math.sqrt(0.5))
        assert etas[4] == pytest.approx(e0 * 0.5)
        assert etas[16] == pytest.approx(e0 * 0.5 * math.sqrt(0.5) ** 2)

    def test_fixed_schedule(self):
        l = RWMLearner(rng=0, eta=0.3, schedule="fixed")
        for _ in range(100):
            l.update(1.0, 0.0)
        assert l.eta == 0.3

    def test_loss_validation(self):
        l = RWMLearner(rng=0)
        with pytest.raises(ValueError):
            l.update(-0.1, 0.0)
        with pytest.raises(ValueError):
            l.update(0.0, 1.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RWMLearner(eta=0.0)
        with pytest.raises(ValueError):
            RWMLearner(eta=1.0)
        with pytest.raises(ValueError):
            RWMLearner(schedule="warp")

    def test_no_underflow_on_long_runs(self):
        l = RWMLearner(rng=0, eta=0.9, schedule="fixed")
        for _ in range(5000):
            l.update(0.0, 1.0)
        assert 0.0 <= l.send_probability <= 1.0
        assert np.isfinite(l.weights).all()

    def test_choose_follows_weights(self):
        l = RWMLearner(rng=12)
        for _ in range(30):
            l.update(1.0, 0.0)  # idle is terrible
        draws = [l.choose() for _ in range(200)]
        assert np.mean(draws) > 0.9  # almost always SEND


class TestNoRegret:
    def test_converges_to_better_action(self):
        """Average loss approaches the best action's loss."""
        gen = np.random.default_rng(0)
        l = RWMLearner(rng=gen)
        total_loss = 0.0
        T = 2000
        for _ in range(T):
            a = l.choose()
            # SEND always succeeds in this toy world: loss(send)=0, idle=0.5.
            total_loss += 0.0 if a == SEND else LOSS_IDLE
            l.update(LOSS_IDLE, 0.0)
        # Best fixed action (send) has loss 0; RWM must approach it.
        assert total_loss / T < 0.05

    def test_sublinear_regret_adversarial_alternation(self):
        """Alternating losses: regret against the best action stays small."""
        gen = np.random.default_rng(1)
        l = RWMLearner(rng=gen)
        T = 4096
        loss_learner = 0.0
        loss_send_total = 0.0
        loss_idle_total = 0.0
        for t in range(T):
            a = l.choose()
            # Adversarial-ish: send bad on even steps, good on odd.
            loss_send = 1.0 if t % 2 == 0 else 0.0
            loss_learner += loss_send if a == SEND else LOSS_IDLE
            loss_send_total += loss_send
            loss_idle_total += LOSS_IDLE
            l.update(LOSS_IDLE, loss_send)
        best = min(loss_send_total, loss_idle_total)
        regret = loss_learner - best
        assert regret <= 6.0 * math.sqrt(T * math.log(2)) + 50

    def test_idle_send_constants(self):
        assert IDLE == 0 and SEND == 1
