"""Tests for the vectorized RWM learner bank."""

import math

import numpy as np
import pytest

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network
from repro.learning.game import CapacityGame
from repro.learning.rwm import RWMLearner
from repro.learning.rwm_bank import RWMLearnerBank


class TestEquivalenceWithScalarLearner:
    def test_identical_weights_under_identical_losses(self):
        """Bank and scalar learners fed the same loss streams must hold
        identical weights and η at every step."""
        n = 7
        gen = np.random.default_rng(0)
        bank = RWMLearnerBank(n, rng=1)
        scalars = [RWMLearner(rng=2) for _ in range(n)]
        for _ in range(40):
            li = gen.random(n)
            ls = gen.random(n)
            bank.update_all(li, ls)
            for i, sc in enumerate(scalars):
                sc.update(float(li[i]), float(ls[i]))
        for i, sc in enumerate(scalars):
            assert bank.send_probabilities[i] == pytest.approx(
                sc.send_probability, rel=1e-12
            )
            assert bank.eta == pytest.approx(sc.eta)
            assert bank.t == sc.t

    def test_observe_outcomes_matches_loss_table(self):
        bank = RWMLearnerBank(2, rng=0)
        bank.observe_outcomes(np.array([True, False]))
        ref_ok = RWMLearner(rng=0)
        ref_ok.observe_outcome(True)
        ref_fail = RWMLearner(rng=0)
        ref_fail.observe_outcome(False)
        assert bank.send_probabilities[0] == pytest.approx(ref_ok.send_probability)
        assert bank.send_probabilities[1] == pytest.approx(ref_fail.send_probability)

    def test_loss_scaling(self):
        bank = RWMLearnerBank(2, rng=0)
        bank.observe_outcomes(np.array([False, False]), loss_scale=np.array([1.0, 0.5]))
        # The half-scaled player moved less.
        p = bank.send_probabilities
        assert p[1] > p[0]


class TestBankMechanics:
    def test_initial_uniform(self):
        bank = RWMLearnerBank(5, rng=0)
        np.testing.assert_allclose(bank.send_probabilities, 0.5)

    def test_choose_all_follows_probabilities(self):
        bank = RWMLearnerBank(4, rng=0)
        for _ in range(30):
            bank.update_all(np.ones(4), np.zeros(4))  # idle is terrible
        draws = np.mean([bank.choose_all() for _ in range(200)], axis=0)
        assert np.all(draws > 0.85)

    def test_eta_schedule(self):
        bank = RWMLearnerBank(3, rng=0)
        e0 = math.sqrt(0.5)
        for _ in range(5):
            bank.update_all(np.zeros(3), np.zeros(3))
        # Decays fired at t=3 and t=5.
        assert bank.eta == pytest.approx(e0 * 0.5)

    def test_fixed_schedule(self):
        bank = RWMLearnerBank(3, rng=0, eta=0.3, schedule="fixed")
        for _ in range(50):
            bank.update_all(np.ones(3), np.zeros(3))
        assert bank.eta == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            RWMLearnerBank(0)
        with pytest.raises(ValueError):
            RWMLearnerBank(2, eta=1.0)
        with pytest.raises(ValueError):
            RWMLearnerBank(2, schedule="warp")
        bank = RWMLearnerBank(2, rng=0)
        with pytest.raises(ValueError):
            bank.update_all(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            bank.update_all(np.full(2, 1.5), np.zeros(2))
        with pytest.raises(ValueError):
            bank.observe_outcomes(np.array([True]))

    def test_no_underflow(self):
        bank = RWMLearnerBank(2, rng=0, eta=0.9, schedule="fixed")
        for _ in range(5000):
            bank.update_all(np.zeros(2), np.ones(2))
        assert np.all(np.isfinite(bank.send_probabilities))


class TestGameIntegration:
    @pytest.fixture
    def instance(self):
        s, r = paper_random_network(30, rng=5, min_length=0.0, max_length=100.0)
        return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.1, 0.0)

    def test_bank_plays_full_game(self, instance):
        game = CapacityGame(instance, 0.5, model="rayleigh", rng=0)
        bank = RWMLearnerBank(instance.n, rng=1)
        res = game.play(50, learners=bank)
        assert res.num_rounds == 50
        assert bank.t == 50
        assert np.all(np.isfinite(res.send_probabilities))

    def test_bank_converges_like_scalars(self, instance):
        """Tail capacity with the bank matches the scalar-learner game
        within noise — same dynamics, different RNG streams."""
        beta = 0.5
        scalar_res = CapacityGame(instance, beta, model="nonfading", rng=2).play(80)
        bank_game = CapacityGame(instance, beta, model="nonfading", rng=2)
        bank_res = bank_game.play(80, learners=RWMLearnerBank(instance.n, rng=3))
        s_tail = scalar_res.average_successes(20)
        b_tail = bank_res.average_successes(20)
        assert b_tail == pytest.approx(s_tail, rel=0.25)

    def test_bank_with_weighted_game(self, instance):
        w = np.linspace(0.5, 2.0, instance.n)
        game = CapacityGame(instance, 0.5, model="nonfading", rng=4, weights=w)
        res = game.play(30, learners=RWMLearnerBank(instance.n, rng=5))
        assert res.weighted_values is not None

    def test_bank_size_mismatch(self, instance):
        game = CapacityGame(instance, 0.5, rng=6)
        with pytest.raises(ValueError):
            game.play(5, learners=RWMLearnerBank(instance.n + 1, rng=7))
