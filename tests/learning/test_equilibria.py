"""Tests for Nash equilibria of the capacity game."""

import numpy as np
import pytest

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network
from repro.learning.equilibria import (
    best_response_dynamics,
    equilibrium_welfare,
    is_equilibrium,
    price_of_anarchy_sample,
)

BETA = 2.5


def random_instance(seed: int, n: int = 25) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestIsEquilibrium:
    def test_all_send_isolated_links(self):
        s, r = line_network(4, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 1e-9)
        assert is_equilibrium(inst, np.ones(4, dtype=bool), BETA)
        # All-idle is NOT an equilibrium: any link would gain by sending.
        assert not is_equilibrium(inst, np.zeros(4, dtype=bool), BETA)

    def test_conflicting_pair(self):
        """Two mutually destructive links: exactly-one-sends profiles are
        equilibria; both-send and both-idle are not."""
        gains = np.array([[4.0, 4.0], [4.0, 4.0]])
        inst = SINRInstance(gains, noise=0.0)
        assert is_equilibrium(inst, np.array([True, False]), 1.5)
        assert is_equilibrium(inst, np.array([False, True]), 1.5)
        assert not is_equilibrium(inst, np.array([True, True]), 1.5)
        assert not is_equilibrium(inst, np.array([False, False]), 1.5)

    def test_rayleigh_threshold_at_half(self):
        """Single link vs noise: sends iff P[success] > 1/2, i.e. iff
        exp(-βν/S̄) > 1/2."""
        # exp(-1 * 0.5 / 1) = 0.6065 > 0.5 → sending is the equilibrium.
        inst = SINRInstance(np.array([[1.0]]), noise=0.5)
        assert is_equilibrium(inst, np.array([True]), 1.0, model="rayleigh")
        assert not is_equilibrium(inst, np.array([False]), 1.0, model="rayleigh")
        # exp(-1 * 1.0 / 1) = 0.3679 < 0.5 → idling is the equilibrium.
        inst2 = SINRInstance(np.array([[1.0]]), noise=1.0)
        assert is_equilibrium(inst2, np.array([False]), 1.0, model="rayleigh")
        assert not is_equilibrium(inst2, np.array([True]), 1.0, model="rayleigh")

    def test_validation(self):
        inst = random_instance(0)
        with pytest.raises(ValueError):
            is_equilibrium(inst, np.ones(3, dtype=bool), BETA)
        with pytest.raises(ValueError):
            is_equilibrium(inst, np.ones(inst.n, dtype=bool), BETA, model="warp")


class TestBestResponse:
    def test_converged_profile_is_equilibrium(self):
        for seed in range(6):
            inst = random_instance(seed)
            res = best_response_dynamics(inst, BETA, rng=seed)
            if res.converged:
                assert is_equilibrium(inst, res.actions, BETA)

    def test_nonfading_equilibrium_senders_all_succeed(self):
        inst = random_instance(7)
        res = best_response_dynamics(inst, BETA, rng=1)
        if res.converged:
            # Welfare equals the sender count: every sender is received.
            assert res.welfare == pytest.approx(res.actions.sum())
            assert inst.is_feasible(res.actions, BETA)

    def test_rayleigh_convergence_and_welfare(self):
        inst = random_instance(8)
        res = best_response_dynamics(inst, BETA, rng=2, model="rayleigh")
        assert res.welfare == pytest.approx(
            equilibrium_welfare(inst, res.actions, BETA, model="rayleigh")
        )
        if res.converged:
            assert is_equilibrium(inst, res.actions, BETA, model="rayleigh", tolerance=1e-9)

    def test_initial_profile_respected(self):
        inst = random_instance(9)
        res = best_response_dynamics(
            inst, BETA, rng=3, initial=np.zeros(inst.n, dtype=bool), max_rounds=1
        )
        assert res.steps >= 0  # ran without error from the given start

    def test_reproducible(self):
        inst = random_instance(10)
        a = best_response_dynamics(inst, BETA, rng=4)
        b = best_response_dynamics(inst, BETA, rng=4)
        np.testing.assert_array_equal(a.actions, b.actions)
        assert a.steps == b.steps

    def test_validation(self):
        inst = random_instance(0)
        with pytest.raises(ValueError):
            best_response_dynamics(inst, BETA, max_rounds=0)
        with pytest.raises(ValueError):
            best_response_dynamics(inst, BETA, initial=np.zeros(3, dtype=bool))


class TestPriceOfAnarchy:
    def test_sample_structure(self):
        inst = random_instance(11)
        sample = price_of_anarchy_sample(inst, BETA, rng=5, num_starts=4)
        assert sample["num_converged"] >= 1
        assert sample["worst"] <= sample["best"] + 1e-12
        assert sample["poa"] >= sample["pos"] - 1e-12

    def test_nonfading_poa_modest_on_random_instances(self):
        inst = random_instance(12, n=30)
        sample = price_of_anarchy_sample(inst, BETA, rng=6, num_starts=6)
        assert sample["poa"] <= 2.0

    def test_degenerate_instance(self):
        """Nothing feasible: PoA undefined, reported as NaN."""
        gains = np.eye(2) * 0.5 + 0.01
        inst = SINRInstance(gains, noise=10.0)
        sample = price_of_anarchy_sample(inst, 1.0, rng=7, num_starts=2)
        assert np.isnan(sample["poa"])
