"""Tests for convergence diagnostics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.learning.diagnostics import (
    convergence_report,
    convergence_round,
    moving_average,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_trailing_semantics(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        out = moving_average(x, 2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_window_longer_than_series(self):
        x = np.array([2.0, 4.0])
        out = moving_average(x, 10)
        np.testing.assert_allclose(out, [2.0, 3.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)
        with pytest.raises(ValueError):
            moving_average([[1.0]], 2)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=40))
    def test_bounded_by_extrema(self, data):
        out = moving_average(data, 5)
        assert np.all(out >= min(data) - 1e-9)
        assert np.all(out <= max(data) + 1e-9)


class TestConvergenceRound:
    def test_step_series(self):
        series = [0.0] * 20 + [10.0] * 40
        # Window-5 average reaches 9 at round 25 (5 rounds into the step).
        r = convergence_round(series, 9.0, window=5)
        assert r == 25

    def test_never_converges(self):
        assert convergence_round([1.0] * 30, 5.0, window=5) is None

    def test_dip_disqualifies_early_round(self):
        series = [10.0] * 10 + [0.0] * 10 + [10.0] * 30
        r = convergence_round(series, 9.0, window=1, slack=0.0)
        assert r == 21  # the early plateau is invalidated by the dip

    def test_slack_tolerates_small_dips(self):
        series = [10.0] * 10 + [9.6] * 10 + [10.0] * 10
        r = convergence_round(series, 10.0, window=1, slack=0.5)
        assert r == 1

    def test_immediate(self):
        assert convergence_round([5.0, 5.0, 5.0], 5.0, window=1) == 1


class TestConvergenceReport:
    def test_learning_curve(self):
        series = np.concatenate([np.linspace(0, 10, 30), np.full(70, 10.0)])
        rep = convergence_report(series, window=10)
        assert rep.final_level == pytest.approx(10.0)
        assert rep.round_to_half is not None and rep.round_to_half < 30
        assert rep.round_to_90pct is not None and rep.round_to_90pct <= 40
        assert rep.round_to_half <= rep.round_to_90pct

    def test_flat_series(self):
        rep = convergence_report([4.0] * 20, window=5)
        assert rep.final_level == 4.0
        assert rep.round_to_half == 1
        assert rep.round_to_90pct == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convergence_report([])
