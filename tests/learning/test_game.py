"""Tests for the capacity game engine."""

import numpy as np
import pytest

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network
from repro.learning.exp3 import Exp3Learner
from repro.learning.game import CapacityGame
from repro.learning.rwm import RWMLearner

BETA = 0.5


@pytest.fixture
def instance():
    s, r = paper_random_network(
        20, rng=77, min_length=0.0, max_length=100.0
    )
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.1, 0.0)


class TestGameMechanics:
    def test_result_shapes(self, instance):
        game = CapacityGame(instance, BETA, model="nonfading", rng=0)
        res = game.play(25)
        n = instance.n
        assert res.actions.shape == (25, n)
        assert res.send_success.shape == (25, n)
        assert res.success_counts.shape == (25,)
        assert res.send_probabilities.shape == (25, n)
        assert res.num_rounds == 25 and res.n == n
        assert res.model == "nonfading" and res.beta == BETA

    def test_success_counts_consistent(self, instance):
        game = CapacityGame(instance, BETA, model="nonfading", rng=1)
        res = game.play(20)
        np.testing.assert_array_equal(
            res.success_counts, (res.actions & res.send_success).sum(axis=1)
        )

    def test_nonfading_counterfactual_correct(self, instance):
        """send_success[t, i] must equal the deterministic SINR test with
        i forced active and others as played."""
        game = CapacityGame(instance, BETA, model="nonfading", rng=2)
        res = game.play(10)
        for t in range(10):
            for i in range(instance.n):
                pattern = res.actions[t].copy()
                pattern[i] = True
                expected = bool(instance.successes(pattern, BETA)[i])
                assert bool(res.send_success[t, i]) == expected

    def test_reproducible(self, instance):
        a = CapacityGame(instance, BETA, model="rayleigh", rng=3).play(15)
        b = CapacityGame(instance, BETA, model="rayleigh", rng=3).play(15)
        np.testing.assert_array_equal(a.actions, b.actions)
        np.testing.assert_array_equal(a.send_success, b.send_success)

    def test_custom_learners(self, instance):
        learners = [Exp3Learner(rng=i) for i in range(instance.n)]
        game = CapacityGame(instance, BETA, model="nonfading", rng=4)
        res = game.play(10, learners=learners)
        assert res.num_rounds == 10
        assert all(l.t == 10 for l in learners)

    def test_learner_count_mismatch(self, instance):
        game = CapacityGame(instance, BETA, rng=5)
        with pytest.raises(ValueError):
            game.play(5, learners=[RWMLearner(rng=0)])

    def test_validation(self, instance):
        with pytest.raises(ValueError):
            CapacityGame(instance, 0.0)
        with pytest.raises(ValueError):
            CapacityGame(instance, BETA, model="psychic")
        with pytest.raises(ValueError):
            CapacityGame(instance, BETA, rng=0).play(0)


class TestConvergence:
    def test_capacity_grows_then_stabilizes(self, instance):
        """The Figure-2 qualitative shape: later rounds beat early rounds."""
        game = CapacityGame(instance, BETA, model="nonfading", rng=6)
        res = game.play(80)
        early = res.success_counts[:10].mean()
        late = res.success_counts[-20:].mean()
        assert late >= early

    def test_regret_per_round_shrinks(self, instance):
        game = CapacityGame(instance, BETA, model="nonfading", rng=7)
        short = game.play(10)
        game2 = CapacityGame(instance, BETA, model="nonfading", rng=7)
        long = game2.play(160)
        assert (
            long.realized_regret().mean() / 160
            <= short.realized_regret().mean() / 10 + 0.05
        )

    def test_lemma5_invariant_on_low_regret_runs(self, instance):
        game = CapacityGame(instance, BETA, model="rayleigh", rng=8)
        res = game.play(120)
        X, F = res.lemma5(instance)
        eps = float(res.expected_regret(instance).max()) / 120
        assert X <= F + 1e-9
        assert F <= 2 * X + max(eps, 0.0) * instance.n + 1e-6

    def test_expected_vs_realized_regret_close(self, instance):
        """Lemma 4's phenomenon, measured."""
        game = CapacityGame(instance, BETA, model="rayleigh", rng=9)
        T = 150
        res = game.play(T)
        gap = np.abs(res.expected_regret(instance) - res.realized_regret())
        assert float(gap.max()) <= 8.0 * np.sqrt(T * np.log(T))

    def test_rayleigh_and_nonfading_same_scale(self, instance):
        nf = CapacityGame(instance, BETA, model="nonfading", rng=10).play(80)
        ray = CapacityGame(instance, BETA, model="rayleigh", rng=10).play(80)
        tail_nf = nf.average_successes(20)
        tail_ray = ray.average_successes(20)
        assert tail_ray >= 0.4 * tail_nf
        assert tail_ray <= 1.6 * tail_nf + 1.0
