"""Tests for reward accounting and regret (Definition 2, Lemma 5)."""

import numpy as np
import pytest

from repro.core.sinr import SINRInstance
from repro.fading.success import success_probability_conditional
from repro.learning.regret import (
    expected_send_rewards,
    external_regret,
    lemma5_quantities,
    realized_rewards,
)


@pytest.fixture
def instance():
    gains = np.array(
        [
            [5.0, 1.0, 0.2],
            [0.8, 5.0, 0.3],
            [0.2, 0.4, 5.0],
        ]
    )
    return SINRInstance(gains, noise=0.2)


class TestRealizedRewards:
    def test_reward_table(self):
        actions = np.array([[True, True, False]])
        success = np.array([[True, False, True]])
        rewards = realized_rewards(actions, success)
        np.testing.assert_allclose(rewards, [[1.0, -1.0, 0.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            realized_rewards(np.zeros((2, 3), bool), np.zeros((3, 2), bool))


class TestExternalRegret:
    def test_zero_for_perfect_play(self):
        """Playing send whenever it succeeds and idle otherwise gives the
        max possible reward each round — regret exactly best_fixed-earned."""
        send_rewards = np.array([[1.0], [-1.0], [1.0], [-1.0]])
        actions = send_rewards[:, 0] > 0  # play send exactly when good
        regret = external_regret(actions[:, None], send_rewards)
        # Earned 2; best fixed: always-send = 0, always-idle = 0 → regret -2?
        # Definition 2 compares to the best *fixed* action, so regret can be
        # negative for adaptive play; it is clamped only by max(·, 0) on the
        # fixed alternatives, not on the difference.
        assert regret[0] == pytest.approx(0.0 - 2.0)

    def test_always_idle_player(self):
        send_rewards = np.ones((5, 1))
        actions = np.zeros((5, 1), dtype=bool)
        regret = external_regret(actions, send_rewards)
        assert regret[0] == pytest.approx(5.0)  # should have sent always

    def test_always_send_when_bad(self):
        send_rewards = -np.ones((5, 1))
        actions = np.ones((5, 1), dtype=bool)
        regret = external_regret(actions, send_rewards)
        assert regret[0] == pytest.approx(5.0)  # idle would have given 0

    def test_nonnegative_for_constant_actions(self):
        """Any constant action sequence has non-negative regret."""
        gen = np.random.default_rng(0)
        send_rewards = gen.uniform(-1, 1, (50, 4))
        for value in (False, True):
            actions = np.full((50, 4), value)
            assert np.all(external_regret(actions, send_rewards) >= -1e-12)

    def test_per_player_independent(self):
        send_rewards = np.array([[1.0, -1.0]] * 4)
        actions = np.array([[True, True]] * 4)
        regret = external_regret(actions, send_rewards)
        assert regret[0] == pytest.approx(0.0)
        assert regret[1] == pytest.approx(4.0)


class TestExpectedSendRewards:
    def test_formula(self, instance):
        actions = np.array([[True, False, True]])
        out = expected_send_rewards(instance, actions, beta=1.0)
        probs = success_probability_conditional(
            instance, actions[0].astype(float), 1.0
        )
        np.testing.assert_allclose(out[0], 2.0 * probs - 1.0)

    def test_bounds(self, instance):
        gen = np.random.default_rng(1)
        actions = gen.random((20, 3)) < 0.5
        out = expected_send_rewards(instance, actions, beta=1.0)
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    def test_shape_validation(self, instance):
        with pytest.raises(ValueError):
            expected_send_rewards(instance, np.zeros((4, 5), bool), 1.0)


class TestLemma5:
    def test_x_leq_f_always(self, instance):
        gen = np.random.default_rng(2)
        actions = gen.random((30, 3)) < 0.6
        X, F = lemma5_quantities(instance, actions, beta=1.0)
        assert X <= F + 1e-12
        assert 0.0 <= X and F <= 3.0

    def test_silent_game(self, instance):
        actions = np.zeros((10, 3), dtype=bool)
        X, F = lemma5_quantities(instance, actions, beta=1.0)
        assert X == 0.0 and F == 0.0

    def test_hand_computed_single_link(self):
        inst = SINRInstance(np.array([[4.0]]), noise=1.0)
        actions = np.array([[True], [False], [True], [False]])
        X, F = lemma5_quantities(inst, actions, beta=1.0)
        assert F == pytest.approx(0.5)
        assert X == pytest.approx(0.5 * np.exp(-0.25))
