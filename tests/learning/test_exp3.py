"""Tests for the Exp3 bandit learner."""

import numpy as np
import pytest

from repro.learning.exp3 import IDLE, SEND, Exp3Learner


class TestMechanics:
    def test_initial_uniformish(self):
        l = Exp3Learner(rng=0, gamma=0.2)
        assert l.send_probability == pytest.approx(0.5)

    def test_exploration_floor(self):
        l = Exp3Learner(rng=0, gamma=0.2)
        for _ in range(500):
            l.choose()
            l.update(SEND, -1.0)  # send is always terrible
        assert l.probabilities[SEND] >= 0.1 - 1e-12  # γ/2 floor

    def test_learns_good_action(self):
        gen = np.random.default_rng(3)
        l = Exp3Learner(rng=gen, gamma=0.1)
        for _ in range(800):
            a = l.choose()
            reward = 1.0 if a == SEND else 0.0
            l.update(a, reward)
        assert l.send_probability > 0.7

    def test_horizon_tuning(self):
        l = Exp3Learner(rng=0, horizon=10000)
        assert 0.0 < l.gamma < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            Exp3Learner(gamma=0.0)
        with pytest.raises(ValueError):
            Exp3Learner(gamma=1.5)
        l = Exp3Learner(rng=0)
        with pytest.raises(ValueError):
            l.update(2, 0.5)
        with pytest.raises(ValueError):
            l.update(SEND, 2.0)

    def test_probabilities_sum_to_one(self):
        l = Exp3Learner(rng=1, gamma=0.3)
        for _ in range(50):
            a = l.choose()
            l.update(a, 1.0 if a == IDLE else -1.0)
            assert l.probabilities.sum() == pytest.approx(1.0)


class TestRegret:
    def test_sublinear_regret_stochastic(self):
        """Against i.i.d. rewards the bandit tracks the better arm."""
        gen = np.random.default_rng(7)
        T = 5000
        l = Exp3Learner(rng=gen, horizon=T)
        earned = 0.0
        for _ in range(T):
            a = l.choose()
            # SEND pays +1 w.p. 0.7 else -1; IDLE pays 0.
            reward = (1.0 if gen.random() < 0.7 else -1.0) if a == SEND else 0.0
            earned += reward
            l.update(a, reward)
        best_fixed = T * 0.4  # E[send] = 0.4 per round
        assert earned >= best_fixed - 2.5 * np.sqrt(T * np.log(2) * 2) - 250
