"""Tests for the array-backend layer itself.

Covers the configuration object (validation, round-tripping, the ambient
install/scope mechanics), the dense operator's byte-identity contract,
the top-k selection and both sparse product engines, worker shipping
through the executor, and the CLI flag surface.  Cross-channel
*numerical* equivalence lives in
``tests/channel/test_backend_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import backend
from repro.backend import (
    BACKENDS,
    DTYPE_RTOL,
    DTYPES,
    BackendConfig,
    DenseGains,
    NumbaUnavailableError,
    NumpyBackend,
    TopKGains,
    backend_scope,
    numba_available,
    topk_indices,
)
from repro.engine.executor import make_tasks, map_tasks

N = 20


@pytest.fixture(autouse=True)
def _restore_backend_config():
    """The backend config is process-global (it ships to pool workers);
    never let a test leak a non-default policy into its neighbours."""
    previous = backend.get_config()
    yield
    backend.set_config(previous)


@pytest.fixture()
def matrix() -> np.ndarray:
    m = np.random.default_rng(0).random((N, N)) + 0.01
    m[m < 0.3] *= 1e-3  # a weak tail, like real path-loss gains
    return m


def _describe_active_backend(task) -> str:
    """Module-level (picklable) task fn reporting the worker's config."""
    return backend.get_config().describe()


class TestBackendConfig:
    def test_default_is_the_byte_identical_policy(self):
        cfg = BackendConfig()
        assert cfg.is_default()
        assert cfg.backend == "numpy"
        assert cfg.dtype == "float64"
        assert cfg.topk is None
        assert cfg.np_dtype == np.float64
        assert cfg.rtol == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "torch"},
            {"dtype": "float16"},
            {"topk": 0},
            {"topk": -3},
            {"topk": True},
            {"topk": 2.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackendConfig(**kwargs)

    def test_round_trips_through_plain_data(self):
        for cfg in (
            BackendConfig(),
            BackendConfig(dtype="float32"),
            BackendConfig(topk=8),
            BackendConfig(backend="numba", dtype="float32", topk=4),
        ):
            assert BackendConfig.from_dict(cfg.to_dict()) == cfg

    def test_describe(self):
        assert BackendConfig().describe() == "numpy/float64/dense"
        assert (
            BackendConfig(dtype="float32", topk=16).describe()
            == "numpy/float32/topk=16"
        )

    def test_float32_tolerance_is_documented(self):
        assert BackendConfig(dtype="float32").rtol == DTYPE_RTOL["float32"] > 0.0

    def test_flag_choices_cover_every_config_value(self):
        assert set(BACKENDS) == {"numpy", "numba"}
        assert set(DTYPES) == {"float64", "float32"}


class TestAmbientConfig:
    def test_set_config_returns_previous(self):
        cfg = BackendConfig(dtype="float32")
        previous = backend.set_config(cfg)
        assert backend.get_config() == cfg
        assert backend.set_config(previous) == cfg

    def test_set_config_rejects_non_config(self):
        with pytest.raises(TypeError):
            backend.set_config({"backend": "numpy"})

    def test_scope_restores_on_exception(self):
        before = backend.get_config()
        with pytest.raises(RuntimeError):
            with backend_scope(BackendConfig(topk=4)):
                assert backend.get_config().topk == 4
                raise RuntimeError("boom")
        assert backend.get_config() == before

    def test_active_backend_follows_the_config(self):
        default = backend.active()
        assert isinstance(default, NumpyBackend)
        assert backend.active() is default  # cached
        with backend_scope(BackendConfig(dtype="float32")):
            assert backend.active().dtype == np.float32
        assert backend.active().dtype == np.float64


class TestDenseGains:
    def test_wraps_the_callers_float64_array_without_copy(self, matrix):
        op = NumpyBackend(BackendConfig()).gain_operator(matrix)
        assert isinstance(op, DenseGains)
        assert op.matrix is matrix

    def test_products_are_byte_identical_to_plain_numpy(self, matrix):
        op = DenseGains(matrix)
        x = np.random.default_rng(1).random((7, N))
        assert op.matmul(x).tobytes() == (x @ matrix).tobytes()
        assert op.matvec(x[0]).tobytes() == (x[0] @ matrix).tobytes()
        other = np.random.default_rng(2).random((N, N))
        assert op.gather_matmul(x, other).tobytes() == (x @ other).tobytes()

    def test_gain_operator_stays_dense_when_topk_covers_everything(self, matrix):
        be = NumpyBackend(BackendConfig(topk=N - 1))
        assert isinstance(be.gain_operator(matrix), DenseGains)
        be = NumpyBackend(BackendConfig(topk=N + 5))
        assert isinstance(be.gain_operator(matrix), DenseGains)


class TestTopKSelection:
    def test_matches_brute_force_per_column(self, matrix):
        k = 5
        idx = topk_indices(matrix, k)
        assert idx.shape == (k, N)
        mag = np.abs(matrix)
        for col in range(N):
            order = [
                j for j in np.argsort(mag[:, col], kind="stable") if j != col
            ]
            assert set(idx[:, col]) == set(order[-k:])
            assert list(idx[:, col]) == sorted(idx[:, col])  # deterministic

    def test_k_is_clamped_to_every_off_diagonal_entry(self, matrix):
        assert topk_indices(matrix, 10_000).shape == (N - 1, N)

    def test_rejects_bad_inputs(self, matrix):
        with pytest.raises(ValueError):
            topk_indices(matrix[:2], 1)  # non-square
        with pytest.raises(ValueError):
            topk_indices(matrix, 0)
        with pytest.raises(ValueError):
            topk_indices(np.ones((1, 1)), 1)

    def test_diagonal_never_competes_for_a_slot(self):
        m = np.eye(6) * 100.0 + 0.01  # huge diagonal, tiny off-diagonal
        idx = topk_indices(m, 2)
        cols = np.broadcast_to(np.arange(6), idx.shape)
        assert not np.any(idx == cols)


class TestTopKGains:
    def _masked_dense(self, matrix, op) -> np.ndarray:
        """The dense matrix equivalent of the operator's sparse pattern."""
        approx = np.zeros_like(matrix)
        cols = np.broadcast_to(np.arange(matrix.shape[0]), op.indices.shape)
        approx[op.indices, cols] = matrix[op.indices, cols]
        return approx

    def test_keep_diagonal_stores_the_exact_diagonal_first(self, matrix):
        op = TopKGains.build(matrix, 4, keep_diagonal=True)
        assert op.keeps_diagonal and op.k == 4
        np.testing.assert_array_equal(op.indices[0], np.arange(N))
        np.testing.assert_array_equal(op.values[0], np.diagonal(matrix))

    def test_matmul_equals_masked_dense_product(self, matrix):
        x = np.random.default_rng(3).random((9, N))
        for keep in (False, True):
            op = TopKGains.build(matrix, 6, keep_diagonal=keep)
            expected = x @ self._masked_dense(matrix, op)
            np.testing.assert_allclose(op.matmul(x), expected, rtol=1e-12)
            np.testing.assert_allclose(op.matvec(x[0]), expected[0], rtol=1e-12)

    def test_gather_matmul_takes_values_from_the_substitute(self, matrix):
        op = TopKGains.build(matrix, 6, keep_diagonal=True)
        draws = np.random.default_rng(4).random((N, N))
        x = np.random.default_rng(5).random((9, N))
        expected = x @ self._masked_dense(draws, op)
        np.testing.assert_allclose(op.gather_matmul(x, draws), expected, rtol=1e-12)

    def test_einsum_fallback_matches_the_scipy_engine(self, matrix):
        """The pure-NumPy product must agree with scipy's CSR product —
        the fallback is what CI's no-scipy environments would run."""
        fast = TopKGains.build(matrix, 6, keep_diagonal=True, use_scipy=True)
        slow = TopKGains.build(matrix, 6, keep_diagonal=True, use_scipy=False)
        assert slow._csr is None
        x = np.random.default_rng(6).random((9, N))
        np.testing.assert_allclose(slow.matmul(x), fast.matmul(x), rtol=1e-12)
        draws = np.random.default_rng(7).random((N, N))
        np.testing.assert_allclose(
            slow.gather_matmul(x, draws), fast.gather_matmul(x, draws), rtol=1e-12
        )

    def test_float32_build_casts_values_only(self, matrix):
        op = TopKGains.build(matrix, 6, dtype=np.float32)
        assert op.dtype == np.float32
        assert op.indices.dtype == np.intp

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            TopKGains(np.zeros((2, 3), dtype=np.intp), np.zeros((3, 2)), keeps_diagonal=False)


class TestWorkerShipping:
    def test_config_reaches_pool_workers(self):
        """``--jobs N`` determinism requires every worker to compute under
        the parent's policy; the bundle ships it via the initializer."""
        cfg = BackendConfig(dtype="float32", topk=4)
        with backend_scope(cfg):
            out = map_tasks(_describe_active_backend, make_tasks(range(3)), jobs=2)
        assert out == ["numpy/float32/topk=4"] * 3

    def test_serial_backend_sees_the_same_config(self):
        with backend_scope(BackendConfig(topk=7)):
            out = map_tasks(_describe_active_backend, make_tasks(range(2)), jobs=1)
        assert out == ["numpy/float64/topk=7"] * 2


class TestNumbaGate:
    @pytest.mark.skipif(numba_available(), reason="numba is importable here")
    def test_resolve_raises_a_one_line_error_without_numba(self):
        with pytest.raises(NumbaUnavailableError, match="--backend numpy"):
            backend.resolve(BackendConfig(backend="numba"))

    @pytest.mark.skipif(not numba_available(), reason="numba not importable")
    def test_numba_topk_matches_numpy_topk(self, matrix):
        x = np.random.default_rng(8).random((9, N))
        ref = TopKGains.build(matrix, 6, keep_diagonal=True)
        be = backend.resolve(BackendConfig(backend="numba", topk=6))
        op = be.gain_operator(matrix, keep_diagonal=True)
        np.testing.assert_allclose(op.matmul(x), ref.matmul(x), rtol=1e-12)


class TestCLIFlags:
    def test_topk_must_be_positive(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "E11", "--topk", "0"])

    @pytest.mark.skipif(numba_available(), reason="numba is importable here")
    def test_numba_backend_rejected_eagerly(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "E11", "--backend", "numba"])
        assert "numba" in str(excinfo.value.code)

    def test_run_records_backend_in_summary(self, tmp_path, capsys):
        import json

        from repro.cli import main

        code = main(
            ["run", "E11", "--out", str(tmp_path), "--dtype", "float32", "--topk", "8"]
        )
        capsys.readouterr()
        assert code == 0
        doc = json.loads((tmp_path / "summary.json").read_text())
        assert doc["backend"] == {"backend": "numpy", "dtype": "float32", "topk": 8}
