"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.engine import chaos
from repro.engine.chaos import ChaosPlan, Fault
from repro.engine.registry import all_specs


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in all_specs():
            assert exp_id in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_design_experiments_listed(self, capsys):
        # All DESIGN.md experiments must be runnable from the CLI.
        main(["list"])
        out = capsys.readouterr().out
        for k in range(1, 23):
            assert f"E{k} " in out or f"E{k}\n" in out or f"E{k}  " in out


class TestRun:
    def test_run_single_experiment_writes_outputs(self, tmp_path, capsys):
        code = main(["run", "E11", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "E11" in out and "PASS" in out
        assert (tmp_path / "E11.txt").exists()
        doc = json.loads((tmp_path / "E11.json").read_text())
        assert doc["experiment_id"] == "E11"

    def test_run_comma_list(self, capsys):
        code = main(["run", "e11,e13"])  # lower-case accepted
        out = capsys.readouterr().out
        assert code == 0
        assert "E11" in out and "E13" in out

    def test_out_writes_summary_json(self, tmp_path, capsys):
        code = main(["run", "E11,E13", "--out", str(tmp_path)])
        capsys.readouterr()
        assert code == 0
        doc = json.loads((tmp_path / "summary.json").read_text())
        assert doc["scale"] == "quick"
        assert doc["passed"] is True
        ids = [e["experiment_id"] for e in doc["experiments"]]
        assert ids == ["E11", "E13"]
        for entry in doc["experiments"]:
            assert entry["passed"] is True
            assert entry["checks"] and all(
                isinstance(v, bool) for v in entry["checks"].values()
            )
            assert entry["timings"]["total"] > 0.0

    def test_timings_flag_renders_stage_times(self, capsys):
        code = main(["run", "E13", "--timings"])
        out = capsys.readouterr().out
        assert code == 0
        assert "timings (wall-clock seconds):" in out
        assert "total:" in out

    def test_no_timings_by_default(self, capsys):
        code = main(["run", "E13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "timings" not in out

    def test_seed_override_changes_results(self, tmp_path, capsys):
        main(["run", "E13", "--out", str(tmp_path / "a")])
        main(["run", "E13", "--out", str(tmp_path / "b"), "--seed", "99"])
        main(["run", "E13", "--out", str(tmp_path / "c"), "--seed", "99"])
        capsys.readouterr()
        default = (tmp_path / "a" / "E13.json").read_text()
        seeded = (tmp_path / "b" / "E13.json").read_text()
        seeded_again = (tmp_path / "c" / "E13.json").read_text()
        assert seeded != default  # the override reaches the driver
        assert seeded == seeded_again  # and is itself deterministic

    def test_jobs_flag_is_deterministic(self, tmp_path, capsys):
        main(["run", "E13", "--out", str(tmp_path / "j1"), "--jobs", "1"])
        main(["run", "E13", "--out", str(tmp_path / "j2"), "--jobs", "2"])
        capsys.readouterr()
        assert (tmp_path / "j1" / "E13.json").read_bytes() == (
            tmp_path / "j2" / "E13.json"
        ).read_bytes()


class TestFailurePaths:
    """Every operational failure must exit non-zero with a one-line,
    actionable message — never a traceback."""

    def test_nonexistent_experiment_names_known_ids(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "E99"])
        assert "unknown experiment" in str(err.value)
        assert "E1" in str(err.value)  # the message lists what *is* valid

    def test_unwritable_out_directory(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("plain file")
        with pytest.raises(SystemExit) as err:
            main(["run", "E11", "--out", str(blocker / "results")])
        assert "cannot create --out directory" in str(err.value)

    def test_negative_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "E11", "--jobs", "-3"])
        assert err.value.code == 2  # argparse usage error

    def test_absurd_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "E11", "--jobs", "999999"])
        assert err.value.code == 2
        assert "sanity cap" in capsys.readouterr().err

    def test_zero_retries_rejected(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "E11", "--on-error", "retry", "--retries", "0"])
        assert err.value.code == 2

    def test_negative_task_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "E11", "--task-timeout", "-5"])
        assert err.value.code == 2

    def test_resume_missing_run_lists_known_ids(self, tmp_path, capsys):
        main(["run", "E11", "--run-id", "existing", "--runs-root", str(tmp_path)])
        capsys.readouterr()
        with pytest.raises(SystemExit) as err:
            main(["run", "E11", "--resume", "ghost", "--runs-root", str(tmp_path)])
        assert "no journaled run" in str(err.value)
        assert "existing" in str(err.value)

    def test_resume_corrupt_run_dir(self, tmp_path):
        run_dir = tmp_path / "broken"
        run_dir.mkdir()
        (run_dir / "meta.json").write_text("{ not json")
        with pytest.raises(SystemExit) as err:
            main(["run", "E11", "--resume", "broken", "--runs-root", str(tmp_path)])
        assert "corrupt run metadata" in str(err.value)

    def test_resume_flag_mismatch(self, tmp_path, capsys):
        main(["run", "E11", "--run-id", "mine", "--runs-root", str(tmp_path)])
        capsys.readouterr()
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "run", "E11", "--resume", "mine",
                    "--runs-root", str(tmp_path), "--seed", "42",
                ]
            )
        assert "seed" in str(err.value) and "--run-id" in str(err.value)

    def test_resume_backend_config_mismatch_names_fields(self, tmp_path, capsys):
        """S2: resuming under a different array-backend configuration is
        refused with a per-field diff, not a generic mismatch line."""
        main(["run", "E11", "--run-id", "mine", "--runs-root", str(tmp_path)])
        capsys.readouterr()
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "run", "E11", "--resume", "mine",
                    "--runs-root", str(tmp_path), "--dtype", "float32",
                ]
            )
        message = str(err.value)
        assert "backend" in message
        assert "dtype" in message
        assert "float32" in message and "float64" in message

    def test_dispatch_workers_require_dispatch_executor(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "run", "E11", "--dispatch-workers", "2",
                    "--runs-root", str(tmp_path),
                ]
            )
        assert "--executor dispatch" in str(err.value)

    def test_run_with_dispatch_executor_matches_serial(self, tmp_path, capsys):
        serial_dir = tmp_path / "serial"
        main(["run", "E11", "--out", str(serial_dir)])
        capsys.readouterr()
        dispatch_dir = tmp_path / "dispatch"
        main(
            [
                "run", "E11", "--out", str(dispatch_dir),
                "--executor", "dispatch", "--dispatch-workers", "2",
                "--runs-root", str(tmp_path / "runs"),
            ]
        )
        out = capsys.readouterr().out
        assert (dispatch_dir / "E11.json").read_bytes() == (
            serial_dir / "E11.json"
        ).read_bytes()
        summary = json.loads((dispatch_dir / "summary.json").read_text())
        assert summary["executor"] == "dispatch"
        assert "E11" in out

    def test_run_id_refuses_reuse(self, tmp_path, capsys):
        main(["run", "E11", "--run-id", "once", "--runs-root", str(tmp_path)])
        capsys.readouterr()
        with pytest.raises(SystemExit) as err:
            main(["run", "E11", "--run-id", "once", "--runs-root", str(tmp_path)])
        assert "--resume once" in str(err.value)

    def test_run_id_and_resume_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "run", "E11", "--run-id", "a", "--resume", "b",
                    "--runs-root", str(tmp_path),
                ]
            )
        assert "not both" in str(err.value)


class TestKillAndResume:
    """The headline robustness contract: a run that loses tasks exits
    non-zero with an incomplete marker, and resuming it reproduces the
    uninterrupted result byte for byte."""

    @pytest.fixture(autouse=True)
    def _clean_chaos(self):
        yield
        chaos.uninstall()

    def test_faulted_run_resumes_to_identical_bytes(self, tmp_path, monkeypatch, capsys):
        clean_dir = tmp_path / "clean"
        main(["run", "E13", "--out", str(clean_dir)])
        capsys.readouterr()

        # A persistent injected crash takes out one sweep cell; the run
        # survives under --on-error skip but is marked incomplete.
        plan = ChaosPlan(
            state_dir=str(tmp_path / "chaos"),
            faults=(Fault(kind="raise", stage="cells", index=5, once=False),),
        )
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan.to_dict()))
        monkeypatch.setenv(chaos.CHAOS_ENV, str(plan_file))
        faulted_dir = tmp_path / "faulted"
        with pytest.warns(UserWarning):
            code = main(
                [
                    "run", "E13", "--on-error", "skip",
                    "--run-id", "rt", "--runs-root", str(tmp_path / "runs"),
                    "--out", str(faulted_dir),
                ]
            )
        err = capsys.readouterr().err
        assert code == 1
        assert "INCOMPLETE" in err and "--resume rt" in err
        summary = json.loads((faulted_dir / "summary.json").read_text())
        assert summary["incomplete"] is True and summary["run_id"] == "rt"
        entry = summary["experiments"][0]
        assert entry["incomplete"] is True
        assert entry["faults"]["failures"][0]["index"] == 5

        # Resume without the fault: only the lost cell re-runs and the
        # aggregate matches the uninterrupted run exactly.
        monkeypatch.delenv(chaos.CHAOS_ENV)
        chaos.uninstall()
        resumed_dir = tmp_path / "resumed"
        code = main(
            [
                "run", "E13", "--resume", "rt",
                "--runs-root", str(tmp_path / "runs"),
                "--out", str(resumed_dir),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert (resumed_dir / "E13.json").read_bytes() == (
            clean_dir / "E13.json"
        ).read_bytes()
        status = json.loads(
            (tmp_path / "runs" / "rt" / "status.json").read_text()
        )
        assert status["complete"] is True


class TestReport:
    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(["report", "E13", "--out", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert text.startswith("# Experiment report")
        assert "E13" in text and "[PASS]" in text or "PASS" in text

    def test_report_to_stdout(self, capsys):
        code = main(["report", "E13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "## E13" in out
