"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.engine.registry import all_specs


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in all_specs():
            assert exp_id in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_design_experiments_listed(self, capsys):
        # All DESIGN.md experiments must be runnable from the CLI.
        main(["list"])
        out = capsys.readouterr().out
        for k in range(1, 23):
            assert f"E{k} " in out or f"E{k}\n" in out or f"E{k}  " in out


class TestRun:
    def test_run_single_experiment_writes_outputs(self, tmp_path, capsys):
        code = main(["run", "E11", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "E11" in out and "PASS" in out
        assert (tmp_path / "E11.txt").exists()
        doc = json.loads((tmp_path / "E11.json").read_text())
        assert doc["experiment_id"] == "E11"

    def test_run_comma_list(self, capsys):
        code = main(["run", "e11,e13"])  # lower-case accepted
        out = capsys.readouterr().out
        assert code == 0
        assert "E11" in out and "E13" in out

    def test_out_writes_summary_json(self, tmp_path, capsys):
        code = main(["run", "E11,E13", "--out", str(tmp_path)])
        capsys.readouterr()
        assert code == 0
        doc = json.loads((tmp_path / "summary.json").read_text())
        assert doc["scale"] == "quick"
        assert doc["passed"] is True
        ids = [e["experiment_id"] for e in doc["experiments"]]
        assert ids == ["E11", "E13"]
        for entry in doc["experiments"]:
            assert entry["passed"] is True
            assert entry["checks"] and all(
                isinstance(v, bool) for v in entry["checks"].values()
            )
            assert entry["timings"]["total"] > 0.0

    def test_timings_flag_renders_stage_times(self, capsys):
        code = main(["run", "E13", "--timings"])
        out = capsys.readouterr().out
        assert code == 0
        assert "timings (wall-clock seconds):" in out
        assert "total:" in out

    def test_no_timings_by_default(self, capsys):
        code = main(["run", "E13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "timings" not in out

    def test_seed_override_changes_results(self, tmp_path, capsys):
        main(["run", "E13", "--out", str(tmp_path / "a")])
        main(["run", "E13", "--out", str(tmp_path / "b"), "--seed", "99"])
        main(["run", "E13", "--out", str(tmp_path / "c"), "--seed", "99"])
        capsys.readouterr()
        default = (tmp_path / "a" / "E13.json").read_text()
        seeded = (tmp_path / "b" / "E13.json").read_text()
        seeded_again = (tmp_path / "c" / "E13.json").read_text()
        assert seeded != default  # the override reaches the driver
        assert seeded == seeded_again  # and is itself deterministic

    def test_jobs_flag_is_deterministic(self, tmp_path, capsys):
        main(["run", "E13", "--out", str(tmp_path / "j1"), "--jobs", "1"])
        main(["run", "E13", "--out", str(tmp_path / "j2"), "--jobs", "2"])
        capsys.readouterr()
        assert (tmp_path / "j1" / "E13.json").read_bytes() == (
            tmp_path / "j2" / "E13.json"
        ).read_bytes()


class TestReport:
    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(["report", "E13", "--out", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert text.startswith("# Experiment report")
        assert "E13" in text and "[PASS]" in text or "PASS" in text

    def test_report_to_stdout(self, capsys):
        code = main(["report", "E13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "## E13" in out
