"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_registered_experiments_have_descriptions(self):
        # All DESIGN.md experiments must be runnable from the CLI.
        assert {f"E{k}" for k in range(1, 23)} <= set(EXPERIMENTS)
        for exp_id, (desc, runner) in EXPERIMENTS.items():
            assert exp_id.startswith("E")
            assert desc and callable(runner)


class TestRun:
    def test_run_single_experiment_writes_outputs(self, tmp_path, capsys):
        code = main(["run", "E11", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "E11" in out and "PASS" in out
        assert (tmp_path / "E11.txt").exists()
        doc = json.loads((tmp_path / "E11.json").read_text())
        assert doc["experiment_id"] == "E11"

    def test_run_comma_list(self, capsys):
        code = main(["run", "e11,e13"])  # lower-case accepted
        out = capsys.readouterr().out
        assert code == 0
        assert "E11" in out and "E13" in out


class TestReport:
    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(["report", "E13", "--out", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert text.startswith("# Experiment report")
        assert "E13" in text and "[PASS]" in text or "PASS" in text

    def test_report_to_stdout(self, capsys):
        code = main(["report", "E13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "## E13" in out
