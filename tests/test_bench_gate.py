"""The perf-regression gate in ``benchmarks/run_all.py``.

The bench harness is a script, not a package module, so it is loaded by
file path.  These tests pin the ``--check`` floor semantics: a measured
speedup below its per-kernel floor (default 1.0 — a fast path must not
lose to its reference) is a failure, and only kernels explicitly
annotated ``floor: None`` in ``KERNEL_EXPECTATIONS`` are exempt.
"""

import importlib.util
from pathlib import Path

import pytest

_RUN_ALL = Path(__file__).resolve().parents[1] / "benchmarks" / "run_all.py"


@pytest.fixture(scope="module")
def run_all():
    spec = importlib.util.spec_from_file_location("bench_run_all", _RUN_ALL)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_synthetic_below_floor_entry_fails(run_all):
    kernels = {"latency_aloha_n1000": {"before_s": 1.0, "after_s": 0.5, "speedup": 2.0}}
    failures = run_all.check_speedup_floors(kernels)
    assert len(failures) == 1
    assert "latency_aloha_n1000" in failures[0]
    assert "floor" in failures[0]


def test_default_floor_is_must_improve(run_all):
    # A kernel with no KERNEL_EXPECTATIONS entry must beat its reference.
    assert run_all.check_speedup_floors({"unlisted_kernel": {"speedup": 0.9}})
    assert not run_all.check_speedup_floors({"unlisted_kernel": {"speedup": 1.2}})


def test_at_floor_passes(run_all):
    floor = run_all.KERNEL_EXPECTATIONS["latency_decay_n1000"]["floor"]
    assert not run_all.check_speedup_floors({"latency_decay_n1000": {"speedup": floor}})
    assert run_all.check_speedup_floors(
        {"latency_decay_n1000": {"speedup": floor - 0.01}}
    )


def test_dispatch_tradeoff_kernel_is_annotated_not_silent(run_all):
    entry = run_all.KERNEL_EXPECTATIONS["executor_dispatch_vs_pool_32tasks"]
    assert entry["floor"] is None
    assert "note" in entry and entry["note"]
    # Exempt by annotation: its known sub-1.0 speedup does not fail.
    assert not run_all.check_speedup_floors(
        {"executor_dispatch_vs_pool_32tasks": {"speedup": 0.71}}
    )


def test_enforced_latency_floors_present(run_all):
    # The acceptance floors of the batched slot-loop work.
    assert run_all.KERNEL_EXPECTATIONS["latency_aloha_n1000"]["floor"] >= 5.0
    assert run_all.KERNEL_EXPECTATIONS["latency_decay_n1000"]["floor"] >= 5.0
    assert run_all.KERNEL_EXPECTATIONS["latency_aloha_n300"]["floor"] >= 3.0
    assert run_all.KERNEL_EXPECTATIONS["latency_decay_n300"]["floor"] >= 3.0
