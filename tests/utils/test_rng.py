"""Tests for random-stream management."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_int_seed_deterministic(self):
        assert as_generator(42).random() == as_generator(42).random()

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = as_generator(seq).random()
        b = as_generator(np.random.SeedSequence(7)).random()
        assert a == b

    def test_none_gives_fresh_entropy(self):
        # Can't assert inequality reliably, but both must be generators.
        assert isinstance(as_generator(None), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_generator("seed")
        with pytest.raises(TypeError):
            as_generator(3.14)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_independent_and_reproducible(self):
        a = [g.random() for g in spawn_generators(99, 3)]
        b = [g.random() for g in spawn_generators(99, 3)]
        assert a == b
        assert len(set(a)) == 3  # streams differ from each other


class TestRngFactory:
    def test_same_key_same_stream(self):
        f = RngFactory(2012)
        assert f.stream("net", 3).random() == RngFactory(2012).stream("net", 3).random()

    def test_different_keys_differ(self):
        f = RngFactory(2012)
        draws = {
            f.stream("net", 0).random(),
            f.stream("net", 1).random(),
            f.stream("fading", 0).random(),
            f.stream("net", 0, "fading", 1).random(),
        }
        assert len(draws) == 4

    def test_float_keys_supported(self):
        f = RngFactory(1)
        assert f.stream("q", 0.5).random() == RngFactory(1).stream("q", 0.5).random()
        assert f.stream("q", 0.5).random() != f.stream("q", 0.25).random()

    def test_streams_helper(self):
        f = RngFactory(5)
        many = f.streams(4, "worker")
        assert len(many) == 4
        explicit = [f.stream("worker", i).random() for i in range(4)]
        assert [g.random() for g in many] == explicit

    def test_bad_key_part_rejected(self):
        with pytest.raises(TypeError):
            RngFactory(0).stream(object())

    def test_root_entropy_exposed(self):
        assert RngFactory(2012).root_entropy == 2012

    def test_string_hash_is_process_stable(self):
        """String keys must not rely on Python's salted hash()."""
        f = RngFactory(0)
        # FNV-1a of 'abc' is fixed; just assert determinism between two
        # factories (the salted-hash bug would still pass here, but the
        # implementation is pinned to an explicit byte fold).
        assert (
            f.seed_sequence("abc").spawn_key
            == RngFactory(0).seed_sequence("abc").spawn_key
        )
