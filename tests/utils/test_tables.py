"""Tests for text table/series rendering."""

import pytest

from repro.utils.tables import format_series, format_table, sparkline


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 4.25]])
        assert "a" in out and "bb" in out
        assert "2.5000" in out and "4.2500" in out

    def test_title_rendered(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert set(out.splitlines()[1]) == {"="}

    def test_none_renders_dash(self):
        out = format_table(["x", "y"], [[1, None]])
        assert "-" in out.splitlines()[-1]

    def test_string_and_bool_cells(self):
        out = format_table(["k", "v"], [["name", True]])
        assert "name" in out and "True" in out

    def test_precision(self):
        out = format_table(["x"], [[1.23456789]], precision=2)
        assert "1.23" in out and "1.2346" not in out

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_columns_aligned(self):
        out = format_table(["col"], [[1], [100], [10000]])
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1  # all lines equally wide


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert len(s) == 3
        assert len(set(s)) == 1

    def test_monotone_series_monotone_glyphs(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(s) == sorted(s)
        assert s[0] != s[-1]

    def test_extremes_hit_end_glyphs(self):
        s = sparkline([0.0, 1.0])
        assert s[0] == "▁" and s[-1] == "█"


class TestFormatSeries:
    def test_basic(self):
        out = format_series("q", [0.1, 0.2], {"curve": [1.0, 2.0]})
        assert "q" in out and "curve" in out
        assert "0.1000" in out and "2.0000" in out

    def test_sparkline_footer(self):
        out = format_series("x", [1, 2, 3], {"c": [1.0, 2.0, 3.0]})
        assert "shape:" in out

    def test_sparkline_suppressed(self):
        out = format_series(
            "x", [1, 2, 3], {"c": [1.0, 2.0, 3.0]}, with_sparklines=False
        )
        assert "shape:" not in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"c": [1.0]})

    def test_multiple_curves_ordered(self):
        out = format_series("x", [1], {"a": [1.0], "b": [2.0]})
        header = out.splitlines()[0]
        assert header.index("a") < header.index("b")
