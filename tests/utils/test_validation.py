"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_nonnegative,
    check_positive,
    check_probability,
    check_probability_vector,
    check_square_matrix,
)


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts(self, v):
        assert check_probability(v) == v

    @pytest.mark.parametrize("v", [-0.01, 1.01, np.nan])
    def test_rejects(self, v):
        with pytest.raises(ValueError):
            check_probability(v)


class TestCheckProbabilityVector:
    def test_accepts_and_converts(self):
        out = check_probability_vector([0, 1, 0.5])
        assert out.dtype == np.float64
        assert out.tolist() == [0.0, 1.0, 0.5]

    def test_length_enforced(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.5, 0.5], n=3)

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.5, 1.5])
        with pytest.raises(ValueError):
            check_probability_vector([-0.1])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.5, np.nan])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector([[0.5]])

    def test_no_copy_when_already_float(self):
        arr = np.array([0.1, 0.9])
        assert check_probability_vector(arr) is arr


class TestScalarChecks:
    def test_positive(self):
        assert check_positive(2) == 2.0
        for bad in (0.0, -1.0, np.inf, np.nan):
            with pytest.raises(ValueError):
                check_positive(bad)

    def test_nonnegative(self):
        assert check_nonnegative(0) == 0.0
        assert check_nonnegative(3.5) == 3.5
        for bad in (-1e-9, np.inf, np.nan):
            with pytest.raises(ValueError):
                check_nonnegative(bad)

    def test_error_message_includes_name(self):
        with pytest.raises(ValueError, match="alpha"):
            check_positive(-1, "alpha")


class TestCheckSquareMatrix:
    def test_accepts(self):
        m = check_square_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert m.shape == (2, 2)

    def test_size_enforced(self):
        with pytest.raises(ValueError):
            check_square_matrix(np.eye(3), n=2)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            check_square_matrix(np.ones((2, 3)))
        with pytest.raises(ValueError):
            check_square_matrix(np.ones(4))
