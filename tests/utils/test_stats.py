"""Tests for summary statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import Summary, mean_confidence_interval, summarize


class TestSummarize:
    def test_basic_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.n == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_singleton(self):
        s = summarize([7.0])
        assert s.mean == 7.0
        assert s.std == 0.0
        assert s.ci_half_width == 0.0

    def test_ci_bounds_consistent(self):
        s = summarize(np.arange(100), confidence=0.95)
        assert s.ci_low == pytest.approx(s.mean - s.ci_half_width)
        assert s.ci_high == pytest.approx(s.mean + s.ci_half_width)

    def test_wider_confidence_wider_interval(self):
        data = np.random.default_rng(0).normal(size=50)
        assert (
            summarize(data, 0.99).ci_half_width
            > summarize(data, 0.95).ci_half_width
            > summarize(data, 0.90).ci_half_width
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, np.nan])
        with pytest.raises(ValueError):
            summarize([1.0, np.inf])

    def test_unknown_confidence_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=0.8)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=2,
            max_size=50,
        )
    )
    def test_mean_within_extrema(self, data):
        s = summarize(data)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9

    def test_coverage_of_ci(self):
        """~95% of CIs around sample means cover the true mean."""
        gen = np.random.default_rng(42)
        hits = 0
        trials = 300
        for _ in range(trials):
            s = summarize(gen.normal(loc=3.0, size=40))
            hits += s.ci_low <= 3.0 <= s.ci_high
        assert hits / trials > 0.88


def test_mean_confidence_interval_tuple():
    mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
    assert low <= mean <= high
    assert mean == pytest.approx(2.0)


def test_summary_is_frozen():
    s = Summary(1.0, 0.0, 0.0, 1, 1.0, 1.0)
    with pytest.raises(AttributeError):
        s.mean = 2.0
