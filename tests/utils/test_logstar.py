"""Tests for the iterated logarithm and Algorithm 1's stage sequence."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.logstar import b_sequence, log_star, num_simulation_stages


class TestLogStar:
    @pytest.mark.parametrize(
        "x,expected",
        [
            (0.0, 0),
            (0.5, 0),
            (1.0, 0),
            (1.5, 1),
            (2.0, 1),
            (3.0, 2),
            (4.0, 2),
            (5.0, 3),
            (16.0, 3),
            (17.0, 4),
            (65536.0, 4),
            (65537.0, 5),
        ],
    )
    def test_known_values_base2(self, x, expected):
        assert log_star(x) == expected

    def test_negative_is_zero(self):
        assert log_star(-100.0) == 0

    def test_monotone_nondecreasing(self):
        values = [log_star(x) for x in [1, 2, 3, 5, 10, 100, 1e4, 1e8, 1e30]]
        assert values == sorted(values)

    def test_natural_base(self):
        # log* base e: e^e ≈ 15.15 needs 3 applications.
        assert log_star(math.e, base=math.e) == 1
        assert log_star(math.e**math.e, base=math.e) == 2

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            log_star(10.0, base=1.0)
        with pytest.raises(ValueError):
            log_star(10.0, base=0.5)

    @given(st.floats(min_value=1.0001, max_value=1e300))
    def test_definition_property(self, x):
        """log*(x) applications of log2 bring x to <= 1; one fewer does not."""
        k = log_star(x)
        value = x
        for _ in range(k):
            value = math.log2(value)
        assert value <= 1.0
        # Reapplying the definition with k-1 steps must leave value > 1.
        if k > 0:
            value = x
            for _ in range(k - 1):
                value = math.log2(value)
            assert value > 1.0


class TestBSequence:
    def test_paper_recursion(self):
        seq = b_sequence(1000)
        assert seq[0] == pytest.approx(0.25)
        for a, b in zip(seq, seq[1:]):
            assert b == pytest.approx(math.exp(a / 2.0))

    def test_all_below_n(self):
        for n in (1, 2, 10, 100, 10**6):
            assert all(b < n for b in b_sequence(n))

    def test_next_element_reaches_n(self):
        for n in (2, 10, 100, 10**6):
            seq = b_sequence(n)
            assert math.exp(seq[-1] / 2.0) >= n

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            b_sequence(0)
        with pytest.raises(ValueError):
            b_sequence(-5)

    def test_stage_counts_are_tiny(self):
        """Θ(log* n): even astronomically many links need few stages."""
        assert num_simulation_stages(100) <= 8
        assert num_simulation_stages(10**9) <= 9
        assert num_simulation_stages(10**100) <= 11

    @given(st.integers(min_value=1, max_value=10**9))
    def test_stage_count_monotone(self, n):
        assert num_simulation_stages(n) <= num_simulation_stages(n + 1)
