"""Documentation/code consistency: DESIGN.md, the CLI registry, and the
benchmark suite must agree on the experiment inventory.

These tests stop the classic repo rot where an experiment exists in one
place but not the others.
"""

import re
from pathlib import Path

from repro.engine.registry import all_specs

EXPERIMENTS = all_specs()

REPO = Path(__file__).parent.parent
DESIGN = (REPO / "DESIGN.md").read_text(encoding="utf-8")
EXPERIMENTS_MD = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
BENCH_DIR = REPO / "benchmarks"


def design_experiment_ids() -> set:
    return set(re.findall(r"\| (E\d+) \|", DESIGN))


class TestExperimentInventory:
    def test_cli_covers_design(self):
        missing = design_experiment_ids() - set(EXPERIMENTS)
        assert not missing, f"DESIGN.md experiments missing from the CLI: {missing}"

    def test_design_covers_cli(self):
        undocumented = set(EXPERIMENTS) - design_experiment_ids()
        assert not undocumented, (
            f"CLI experiments not documented in DESIGN.md: {undocumented}"
        )

    def test_every_design_experiment_names_an_existing_bench(self):
        for match in re.finditer(r"\| (E\d+) \|.*?`benchmarks/(bench_\w+\.py)`", DESIGN):
            exp_id, bench = match.groups()
            assert (BENCH_DIR / bench).exists(), f"{exp_id} points at missing {bench}"

    def test_every_design_experiment_names_an_existing_driver(self):
        for match in re.finditer(r"\| (E\d+) \|.*?`experiments/(\w+\.py)`", DESIGN):
            exp_id, driver = match.groups()
            path = REPO / "src" / "repro" / "experiments" / driver
            assert path.exists(), f"{exp_id} points at missing {driver}"

    def test_experiments_md_reports_every_experiment(self):
        for exp_id in EXPERIMENTS:
            assert re.search(rf"## {exp_id} ", EXPERIMENTS_MD), (
                f"{exp_id} has no section in EXPERIMENTS.md"
            )

    def test_driver_ids_match_registry_keys(self):
        for exp_id, spec in EXPERIMENTS.items():
            # Only run the cheapest drivers here; identity of the rest is
            # covered by their own tests.
            if exp_id in ("E11", "E13"):
                result = spec.run("quick")
                assert result.experiment_id == exp_id


class TestDocumentationClaims:
    def test_design_notes_paper_text_verified(self):
        assert "Paper-text check" in DESIGN

    def test_experiments_md_summary_count_matches_registry(self):
        m = re.search(r"All (\d+) experiments pass", EXPERIMENTS_MD)
        assert m, "EXPERIMENTS.md lost its summary line"
        assert int(m.group(1)) == len(EXPERIMENTS)

    def test_readme_mentions_cli_and_docs(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "python -m repro" in readme
        assert "docs/theory_map.md" in readme
