"""The public API surface: exports exist, docstring example runs."""

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.capacity
        import repro.channel
        import repro.core
        import repro.experiments
        import repro.fading
        import repro.geometry
        import repro.io
        import repro.latency
        import repro.learning
        import repro.transform
        import repro.utility
        import repro.utils  # noqa: F401


class TestDocstringExample:
    def test_quickstart_from_module_docstring(self):
        """The exact snippet advertised in the package docstring."""
        senders, receivers = repro.paper_random_network(50, rng=0)
        net = repro.Network(senders, receivers)
        inst = repro.SINRInstance.from_network(
            net, repro.UniformPower(2.0), alpha=2.2, noise=4e-7
        )
        chosen = repro.greedy_capacity(inst, beta=2.5)
        q = np.zeros(50)
        q[chosen] = 1.0
        expected = repro.success_probability(inst, q, 2.5)
        assert bool(expected[chosen].sum() >= len(chosen) / np.e)

    def test_doctest_of_package(self):
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0


class TestCrossModuleSanity:
    def test_full_pipeline_binary(self):
        """network -> instance -> schedule -> transfer -> latency, one go."""
        senders, receivers = repro.paper_random_network(30, rng=1)
        net = repro.Network(senders, receivers)
        inst = repro.SINRInstance.from_network(net, repro.UniformPower(2.0), 2.2, 4e-7)
        beta = 2.5
        report = repro.transfer_capacity_algorithm(
            inst,
            repro.BinaryUtility(30, beta),
            lambda i: repro.greedy_capacity(i, beta),
        )
        assert report.ratio >= 1 / np.e - 1e-12
        latency = repro.repeated_max_latency(inst, beta).latency
        assert latency >= repro.latency_lower_bound(inst, beta, rng=0) - 1
        gap = repro.measured_optimum_gap(inst, beta, rng=2, restarts=2)
        assert gap.ratio == pytest.approx(gap.rayleigh_value / gap.nonfading_value)
