"""Tests for the utility-function families (Definition 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sinr import SINRInstance
from repro.utility.base import validity_constant
from repro.utility.binary import BinaryUtility
from repro.utility.shannon import ShannonUtility
from repro.utility.weighted import WeightedUtility


class TestBinaryUtility:
    def test_step_values(self):
        u = BinaryUtility(3, beta=2.0)
        np.testing.assert_allclose(
            u(np.array([1.9, 2.0, 2.1])), [0.0, 1.0, 1.0]
        )

    def test_total_counts_successes(self):
        u = BinaryUtility(3, beta=1.0)
        sinr = np.array([[0.5, 2.0, 3.0]])
        assert u.total(sinr)[0] == 2.0

    def test_total_respects_active_mask(self):
        u = BinaryUtility(3, beta=1.0)
        sinr = np.array([[2.0, 2.0, 2.0]])
        active = np.array([[True, False, True]])
        assert u.total(sinr, active)[0] == 2.0

    def test_batch_shape(self):
        u = BinaryUtility(4, beta=1.0)
        out = u(np.ones((5, 7, 4)))
        assert out.shape == (5, 7, 4)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            BinaryUtility(3, beta=0.0)

    def test_concave_from_is_beta(self):
        np.testing.assert_allclose(BinaryUtility(2, 2.5).concave_from(), 2.5)


class TestWeightedUtility:
    def test_weighted_values(self):
        u = WeightedUtility([2.0, 0.5], beta=1.0)
        np.testing.assert_allclose(u(np.array([1.5, 1.5])), [2.0, 0.5])
        np.testing.assert_allclose(u(np.array([0.5, 1.5])), [0.0, 0.5])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedUtility([1.0, -1.0], beta=1.0)

    def test_weights_copied_and_frozen(self):
        w = np.array([1.0, 2.0])
        u = WeightedUtility(w, beta=1.0)
        w[0] = 9.0
        np.testing.assert_allclose(u.weights, [1.0, 2.0])
        with pytest.raises(ValueError):
            u.weights[0] = 5.0

    def test_reduces_to_binary_with_unit_weights(self):
        wu = WeightedUtility(np.ones(3), beta=2.0)
        bu = BinaryUtility(3, beta=2.0)
        x = np.array([1.0, 2.0, 5.0])
        np.testing.assert_allclose(wu(x), bu(x))


class TestShannonUtility:
    def test_log1p(self):
        u = ShannonUtility(2)
        np.testing.assert_allclose(u(np.array([0.0, np.e - 1.0])), [0.0, 1.0])

    def test_scale(self):
        u = ShannonUtility(1, scale=3.0)
        assert u(np.array([np.e - 1.0]))[0] == pytest.approx(3.0)

    def test_cap(self):
        u = ShannonUtility(1, cap=10.0)
        assert u(np.array([1e12]))[0] == pytest.approx(np.log1p(10.0))
        assert np.isfinite(u(np.array([np.inf]))[0])

    def test_uncapped_inf(self):
        u = ShannonUtility(1)
        assert np.isinf(u(np.array([np.inf]))[0])

    @settings(max_examples=30)
    @given(
        x=st.floats(min_value=0.0, max_value=1e6),
        y=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_concave_nondecreasing(self, x, y):
        u = ShannonUtility(1)
        lo, hi = sorted((x, y))
        assert u(np.array([hi]))[0] >= u(np.array([lo]))[0]
        mid = u(np.array([(lo + hi) / 2.0]))[0]
        assert mid >= 0.5 * (u(np.array([lo]))[0] + u(np.array([hi]))[0]) - 1e-9


class TestValidity:
    def test_binary_validity_threshold(self):
        """Valid iff β < S̄(i,i)/ν strictly, per Definition 1."""
        gains = np.array([[10.0, 0.1], [0.1, 10.0]])
        inst_ok = SINRInstance(gains, noise=1.0)  # S̄/ν = 10
        assert BinaryUtility(2, beta=5.0).is_valid_for(inst_ok)
        assert not BinaryUtility(2, beta=10.0).is_valid_for(inst_ok)
        assert not BinaryUtility(2, beta=20.0).is_valid_for(inst_ok)

    def test_zero_noise_always_valid(self):
        inst = SINRInstance(np.eye(2) + 0.1, noise=0.0)
        assert BinaryUtility(2, beta=100.0).is_valid_for(inst)

    def test_shannon_always_valid(self, paper_instance):
        assert ShannonUtility(paper_instance.n).is_valid_for(paper_instance)

    def test_constants_exceed_one(self, paper_instance):
        c = validity_constant(BinaryUtility(paper_instance.n, 2.5), paper_instance)
        assert c is not None and np.all(c > 1.0)

    def test_size_mismatch_rejected(self, paper_instance):
        with pytest.raises(ValueError):
            validity_constant(BinaryUtility(3, 1.0), paper_instance)

    def test_profile_needs_positive_n(self):
        with pytest.raises(ValueError):
            BinaryUtility(0, 1.0)
