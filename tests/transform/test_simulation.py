"""Tests for Algorithm 1 (Theorem 2's simulation)."""

import math

import numpy as np
import pytest

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.success import success_probability
from repro.geometry.placement import paper_random_network
from repro.transform.simulation import (
    PAPER_REPEATS_PER_STAGE,
    simulate_rayleigh_optimum,
    simulation_schedule,
)
from repro.utils.logstar import b_sequence

BETA = 2.5


@pytest.fixture
def instance():
    s, r = paper_random_network(40, rng=41)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestSchedule:
    def test_stage_structure(self):
        q = np.full(50, 0.8)
        plan = simulation_schedule(q)
        bs = b_sequence(50)
        assert len(plan) == len(bs)
        for (b_k, stage_q, reps), b_expected in zip(plan, bs):
            assert b_k == pytest.approx(b_expected)
            assert reps == PAPER_REPEATS_PER_STAGE
            np.testing.assert_allclose(stage_q, np.clip(q / (4.0 * b_k), 0, 1))

    def test_first_stage_probability(self):
        """b_0 = 1/4 so stage 0 uses q_i / 1 = q_i (clipped)."""
        q = np.array([0.6, 0.2])
        plan = simulation_schedule(q)
        np.testing.assert_allclose(plan[0][1], q)

    def test_probabilities_decay_across_stages(self):
        q = np.full(100, 1.0)
        plan = simulation_schedule(q)
        maxima = [stage_q.max() for _, stage_q, _ in plan]
        assert all(a >= b for a, b in zip(maxima, maxima[1:]))

    def test_total_slots_is_logstar(self):
        q = np.full(100, 0.5)
        plan = simulation_schedule(q)
        assert len(plan) <= 8  # log* scale
        assert sum(reps for _, _, reps in plan) == len(plan) * 19

    def test_custom_repeats_and_n(self):
        q = np.full(10, 0.5)
        plan = simulation_schedule(q, n=1000, repeats=5)
        assert plan[0][2] == 5
        assert len(plan) == len(b_sequence(1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            simulation_schedule(np.array([0.5]), repeats=0)
        with pytest.raises(ValueError):
            simulation_schedule(np.array([1.5]))


class TestSimulationOutcome:
    def test_shapes_and_bookkeeping(self, instance):
        q = np.full(instance.n, 0.5)
        out = simulate_rayleigh_optimum(instance, q, BETA, rng=0)
        assert out.success.shape == (instance.n,)
        assert out.best_sinr.shape == (instance.n,)
        assert out.num_slots == out.num_stages * PAPER_REPEATS_PER_STAGE
        assert out.per_slot_success_counts.shape == (out.num_slots,)
        assert out.num_stages == len(b_sequence(instance.n))

    def test_success_consistent_with_best_sinr(self, instance):
        q = np.full(instance.n, 0.5)
        out = simulate_rayleigh_optimum(instance, q, BETA, rng=1)
        np.testing.assert_array_equal(out.success, out.best_sinr >= BETA)

    def test_zero_probability_links_never_succeed(self, instance):
        q = np.zeros(instance.n)
        q[0] = 1.0
        out = simulate_rayleigh_optimum(instance, q, BETA, rng=2)
        assert not out.success[1:].any()

    def test_lemma3_domination(self, instance):
        """Measured any-slot success >= exact Rayleigh single-slot Q_i."""
        q = np.full(instance.n, 0.6)
        rayleigh = success_probability(instance, q, BETA)
        trials = 300
        gen = np.random.default_rng(3)
        hits = np.zeros(instance.n)
        for _ in range(trials):
            hits += simulate_rayleigh_optimum(instance, q, BETA, gen).success
        freq = hits / trials
        band = 4.0 * np.sqrt(freq * (1 - freq) / trials) + 8.0 / trials
        assert np.all(freq + band >= rayleigh)

    def test_reproducible(self, instance):
        q = np.full(instance.n, 0.5)
        a = simulate_rayleigh_optimum(instance, q, BETA, rng=9)
        b = simulate_rayleigh_optimum(instance, q, BETA, rng=9)
        np.testing.assert_array_equal(a.success, b.success)

    def test_validation(self, instance):
        with pytest.raises(ValueError):
            simulate_rayleigh_optimum(instance, np.full(instance.n, 0.5), 0.0)


def test_theorem2_schedule_length_scaling():
    """Slots grow like 19 · log* n — still tiny at astronomic n."""
    for n, max_stages in [(10, 6), (100, 8), (10**6, 9)]:
        q = np.full(min(n, 10), 0.5)
        plan = simulation_schedule(q, n=n)
        assert len(plan) <= max_stages
