"""Tests for the Section-4 ALOHA step transformation."""

import numpy as np
import pytest

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.success import success_probability
from repro.geometry.placement import paper_random_network
from repro.transform.aloha_transform import (
    estimate_step_success_nonfading,
    transformed_step_simulate,
    transformed_step_success_probability,
)

BETA = 2.5


@pytest.fixture
def instance():
    s, r = paper_random_network(25, rng=31)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestTransformedProbability:
    def test_any_of_k_formula(self, instance):
        q = np.full(instance.n, 0.3)
        single = success_probability(instance, q, BETA)
        four = transformed_step_success_probability(instance, q, BETA, repeats=4)
        np.testing.assert_allclose(four, 1.0 - (1.0 - single) ** 4)

    def test_one_repeat_is_identity(self, instance):
        q = np.full(instance.n, 0.3)
        np.testing.assert_allclose(
            transformed_step_success_probability(instance, q, BETA, repeats=1),
            success_probability(instance, q, BETA),
        )

    def test_more_repeats_more_success(self, instance):
        q = np.full(instance.n, 0.3)
        p2 = transformed_step_success_probability(instance, q, BETA, repeats=2)
        p4 = transformed_step_success_probability(instance, q, BETA, repeats=4)
        assert np.all(p4 >= p2)

    def test_paper_domination_claim(self, instance):
        """1 - (1 - p/e)^4 >= p for p <= 1/2 — with the Lemma-1 argument,
        the transformed Rayleigh step dominates the non-fading step for
        transmit probabilities at most 1/2 (measured)."""
        for q_level in (0.05, 0.2, 0.5):
            q = np.full(instance.n, q_level)
            transformed = transformed_step_success_probability(instance, q, BETA)
            nonfading = estimate_step_success_nonfading(
                instance, q, BETA, rng=7, num_samples=5000
            )
            band = 4.0 * np.sqrt(nonfading * (1 - nonfading) / 5000) + 8.0 / 5000
            assert np.all(transformed + band >= nonfading)

    def test_scalar_inequality_behind_the_claim(self):
        """The pure numeric fact used in Section 4."""
        p = np.linspace(0.0, 0.5, 200)
        assert np.all(1.0 - (1.0 - p / np.e) ** 4 >= p - 1e-12)

    def test_validation(self, instance):
        q = np.full(instance.n, 0.3)
        with pytest.raises(ValueError):
            transformed_step_success_probability(instance, q, BETA, repeats=0)
        with pytest.raises(ValueError):
            transformed_step_success_probability(instance, q, 0.0)


class TestSimulatedStep:
    def test_frequency_matches_probability(self, instance):
        q = np.full(instance.n, 0.3)
        p = transformed_step_success_probability(instance, q, BETA)
        gen = np.random.default_rng(11)
        hits = np.zeros(instance.n)
        trials = 3000
        for _ in range(trials):
            hits += transformed_step_simulate(instance, q, BETA, gen)
        np.testing.assert_allclose(hits / trials, p, atol=0.05)


class TestNonfadingEstimate:
    def test_q_one_is_deterministic(self, instance):
        """With q = 1 the pattern is fixed, so the estimate must equal the
        deterministic indicator exactly."""
        q = np.ones(instance.n)
        est = estimate_step_success_nonfading(instance, q, BETA, rng=3, num_samples=50)
        det = instance.successes(np.ones(instance.n, dtype=bool), BETA).astype(float)
        np.testing.assert_array_equal(est, det)

    def test_validation(self, instance):
        with pytest.raises(ValueError):
            estimate_step_success_nonfading(
                instance, np.ones(instance.n), BETA, num_samples=0
            )
