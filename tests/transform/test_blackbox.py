"""Tests for the Lemma-2 black-box transfer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capacity.greedy import greedy_capacity
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.montecarlo import estimate_expected_utility
from repro.geometry.placement import paper_random_network
from repro.transform.blackbox import (
    lemma2_lower_bound,
    rayleigh_expected_binary,
    transfer_capacity_algorithm,
)
from repro.utility.binary import BinaryUtility
from repro.utility.shannon import ShannonUtility
from repro.utility.weighted import WeightedUtility

BETA = 2.5
ONE_OVER_E = float(np.exp(-1.0))


def random_instance(seed: int, n: int = 20) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestRayleighExpectedBinary:
    def test_matches_theorem1_sum(self, paper_instance):
        subset = greedy_capacity(paper_instance, BETA)
        expected = rayleigh_expected_binary(paper_instance, subset, BETA)
        from repro.fading.success import success_probability

        q = np.zeros(paper_instance.n)
        q[subset] = 1.0
        assert expected == pytest.approx(
            float(success_probability(paper_instance, q, BETA)[subset].sum())
        )

    def test_empty_subset(self, paper_instance):
        assert rayleigh_expected_binary(paper_instance, np.array([], dtype=int), BETA) == 0.0

    def test_boolean_mask_accepted(self, paper_instance):
        mask = np.zeros(paper_instance.n, dtype=bool)
        mask[:3] = True
        a = rayleigh_expected_binary(paper_instance, mask, BETA)
        b = rayleigh_expected_binary(paper_instance, np.arange(3), BETA)
        assert a == pytest.approx(b)


class TestLemma2Guarantee:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_binary_ratio_at_least_one_over_e(self, seed):
        """The *exact* expected Rayleigh successes of any feasible set are
        at least a 1/e fraction of the set size — Lemma 2 with binary
        utilities, no sampling involved."""
        inst = random_instance(seed)
        subset = greedy_capacity(inst, BETA)
        if subset.size == 0:
            return
        expected = rayleigh_expected_binary(inst, subset, BETA)
        assert expected >= subset.size * ONE_OVER_E - 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_certified_bound_correct(self, seed):
        """bound = Σ u_i(γ^nf) Q_i(1_S, γ^nf) must be (a) >= (1/e) x value
        and (b) <= the true Rayleigh expectation."""
        inst = random_instance(seed)
        profile = ShannonUtility(inst.n, cap=1e6)
        subset = greedy_capacity(inst, BETA)
        if subset.size == 0:
            return
        value, bound = lemma2_lower_bound(inst, subset, profile)
        assert bound >= value * ONE_OVER_E - 1e-9
        mask = np.zeros(inst.n)
        mask[subset] = 1.0
        mc, _ = estimate_expected_utility(
            inst, profile.evaluate, mask, rng=seed, num_samples=3000
        )
        assert mc >= bound * 0.9  # MC noise tolerance

    def test_empty_subset(self, paper_instance):
        value, bound = lemma2_lower_bound(
            paper_instance, np.array([], dtype=int), BinaryUtility(paper_instance.n, BETA)
        )
        assert value == 0.0 and bound == 0.0

    def test_infinite_sinr_transfers_fully(self):
        """ν = 0 and no interferers: utility transfers with probability 1."""
        inst = SINRInstance(np.array([[2.0, 0.0], [0.0, 2.0]]), noise=0.0)
        profile = ShannonUtility(2, cap=100.0)
        value, bound = lemma2_lower_bound(inst, np.array([0, 1]), profile)
        assert value == pytest.approx(2 * np.log1p(100.0))
        assert bound == pytest.approx(value)


class TestTransferReport:
    def test_binary_exact_path(self, paper_instance):
        report = transfer_capacity_algorithm(
            paper_instance,
            BinaryUtility(paper_instance.n, BETA),
            lambda inst: greedy_capacity(inst, BETA),
        )
        assert report.nonfading_value == report.subset.size  # feasible set
        assert report.ratio >= ONE_OVER_E - 1e-12
        assert report.rayleigh_value >= report.certified_bound - 1e-9

    def test_weighted_exact_path(self, paper_instance):
        n = paper_instance.n
        w = np.linspace(1.0, 2.0, n)
        report = transfer_capacity_algorithm(
            paper_instance,
            WeightedUtility(w, BETA),
            lambda inst: greedy_capacity(inst, BETA),
        )
        mask = np.zeros(n, dtype=bool)
        mask[report.subset] = True
        assert report.nonfading_value == pytest.approx(float(w[mask].sum()))
        assert report.ratio >= ONE_OVER_E - 1e-9

    def test_shannon_mc_path(self, paper_instance):
        report = transfer_capacity_algorithm(
            paper_instance,
            ShannonUtility(paper_instance.n, cap=1e6),
            lambda inst: greedy_capacity(inst, BETA),
            rng=0,
            num_samples=2000,
        )
        assert report.ratio >= ONE_OVER_E * 0.9  # MC tolerance

    def test_ratio_nan_for_empty_solution(self, paper_instance):
        report = transfer_capacity_algorithm(
            paper_instance,
            BinaryUtility(paper_instance.n, BETA),
            lambda inst: np.array([], dtype=int),
        )
        assert np.isnan(report.ratio)
