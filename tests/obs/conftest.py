"""Shared fixtures: every test leaves the ambient telemetry state clean."""

import pytest

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    obs_metrics.install(None)
    obs_metrics.set_collection(False)
    obs_trace.install_tracer(None)
    obs_trace.set_span_collection(False)
    obs_profile.install_profile_dir(None)
    bus = obs_events.install(None)
    if bus is not None:
        bus.close()
