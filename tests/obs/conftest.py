"""Shared fixtures: every test leaves the ambient telemetry state clean."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    obs_metrics.install(None)
    obs_metrics.set_collection(False)
    obs_trace.install_tracer(None)
    obs_profile.install_profile_dir(None)
