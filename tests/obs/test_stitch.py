"""Distributed-trace stitching: every worker's task spans land in one
coherent run trace, on the pool and on the dispatch backend alike."""

import json

import pytest

from repro.engine.backends import DispatchBackend
from repro.engine.executor import Task, make_tasks, map_tasks
from repro.obs import trace as obs_trace
from repro.obs.trace import SpanCollector, TraceWriter, emit_subtree, span

N_TASKS = 8


def _traced_task(task: Task) -> int:
    # A nested span inside the task function — stitched traces must
    # keep it parented under its task span across the process boundary.
    with obs_trace.span("inner-kernel", kind="stage"):
        return task.payload * 2


def _read(path) -> list:
    return [
        json.loads(line) for line in path.read_text().splitlines() if line.strip()
    ]


def _run_traced(tmp_path, **kwargs) -> list:
    tracer = TraceWriter(tmp_path / "trace.jsonl")
    obs_trace.install_tracer(tracer)
    try:
        with span("sweep", kind="stage"):
            out = map_tasks(_traced_task, make_tasks(range(N_TASKS)),
                            stage="sweep", **kwargs)
    finally:
        obs_trace.install_tracer(None)
        tracer.close()
    assert out == [i * 2 for i in range(N_TASKS)]
    return _read(tmp_path / "trace.jsonl")


def _check_stitched(spans, *, expect_workers: bool) -> None:
    stage = [s for s in spans if s["kind"] == "stage" and s["name"] == "sweep"]
    assert len(stage) == 1
    tasks = [s for s in spans if s["kind"] == "task"]
    # One span per task, every index present, all under the stage span.
    assert sorted(t["meta"]["index"] for t in tasks) == list(range(N_TASKS))
    assert all(t["parent"] == stage[0]["id"] for t in tasks)
    inner = [s for s in spans if s["name"] == "inner-kernel"]
    assert len(inner) == N_TASKS
    task_ids = {t["id"] for t in tasks}
    assert all(s["parent"] in task_ids for s in inner)
    # Remapped ids stay unique across the whole stitched document.
    ids = [s["id"] for s in spans]
    assert len(ids) == len(set(ids))
    if expect_workers:
        workers = {t["meta"].get("worker") for t in tasks}
        assert workers and None not in workers


class TestSerialBaseline:
    def test_serial_trace_is_complete(self, tmp_path):
        spans = _run_traced(tmp_path, jobs=1, executor="serial")
        _check_stitched(spans, expect_workers=False)


class TestPoolStitching:
    def test_pool_workers_task_spans_are_stitched(self, tmp_path):
        spans = _run_traced(tmp_path, jobs=2, executor="pool")
        _check_stitched(spans, expect_workers=False)


class TestDispatchStitching:
    @pytest.mark.parametrize("chunk", [1, 3])
    def test_every_workers_spans_land_in_one_trace(self, tmp_path, chunk):
        backend = DispatchBackend(
            tmp_path / "root", local_workers=2, lease_timeout=10.0,
            poll=0.01, chunk=chunk,
        )
        try:
            spans = _run_traced(tmp_path, executor=backend)
        finally:
            backend.close()
        _check_stitched(spans, expect_workers=True)
        tasks = [s for s in spans if s["kind"] == "task"]
        assert all(s["meta"]["stage"] == "sweep" for s in tasks)


class TestEmitSubtree:
    def test_noop_without_tracer(self):
        emit_subtree([{"name": "x", "kind": "task", "id": 1, "parent": None,
                       "rel": 0.0, "dur": 0.1, "meta": {}}])  # must not raise

    def test_collector_buffer_grafts_under_current_span(self, tmp_path):
        collector = SpanCollector()
        prev = obs_trace.install_tracer(collector)
        try:
            with span("task-0", kind="task", index=0):
                with span("deep", kind="stage"):
                    pass
        finally:
            obs_trace.install_tracer(prev)
        assert [r["name"] for r in collector.records] == ["deep", "task-0"]

        tracer = TraceWriter(tmp_path / "trace.jsonl")
        obs_trace.install_tracer(tracer)
        try:
            with span("stage-x", kind="stage"):
                emit_subtree(collector.records)
        finally:
            obs_trace.install_tracer(None)
            tracer.close()
        spans = {s["name"]: s for s in _read(tmp_path / "trace.jsonl")}
        assert spans["task-0"]["parent"] == spans["stage-x"]["id"]
        assert spans["deep"]["parent"] == spans["task-0"]["id"]
        assert spans["deep"]["dur"] <= spans["task-0"]["dur"] + 1e-9
