"""OpenMetrics exposition tests: format shape, bucket math, snapshotter."""

import math

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import MetricsSnapshotter, render


def _doc():
    reg = MetricsRegistry()
    obs_metrics.install(reg)
    try:
        with obs_metrics.prefix_scope("E1"):
            obs_metrics.add("demo.calls", 3)
            obs_metrics.observe("demo.size", 0.75)  # <=2^0 bucket
            obs_metrics.observe("demo.size", 3.0)   # <=2^2 bucket
            obs_metrics.observe("demo.size", 3.5)   # <=2^2 bucket
        obs_metrics.add("run.total", 1)
        obs_metrics.set_gauge("run.level", 0.5)
    finally:
        obs_metrics.install(None)
    return reg.to_dict()


class TestRender:
    def test_counters_get_total_suffix_and_scope_label(self):
        text = render(_doc())
        assert "# TYPE repro_demo_calls counter" in text
        assert 'repro_demo_calls_total{scope="E1"} 3' in text
        assert 'repro_run_total_total{scope="run"} 1' in text

    def test_gauges_render_plain(self):
        text = render(_doc())
        assert "# TYPE repro_run_level gauge" in text
        assert 'repro_run_level{scope="run"} 0.5' in text

    def test_histogram_buckets_are_cumulative_with_numeric_bounds(self):
        lines = render(_doc()).splitlines()
        buckets = [ln for ln in lines if ln.startswith("repro_demo_size_bucket")]
        # One observation at <= 1.0, all three at <= 4.0, all at +Inf.
        assert any('le="1.0"} 1' in ln for ln in buckets)
        assert any('le="4.0"} 3' in ln for ln in buckets)
        assert buckets[-1].endswith('le="+Inf"} 3')
        bounds = []
        for ln in buckets[:-1]:
            bounds.append(float(ln.split('le="')[1].split('"')[0]))
        assert bounds == sorted(bounds)
        assert 'repro_demo_size_count{scope="E1"} 3' in lines
        total = [ln for ln in lines if ln.startswith("repro_demo_size_sum")]
        assert math.isclose(float(total[0].rsplit(" ", 1)[1]), 7.25)

    def test_ends_with_eof(self):
        assert render(_doc()).endswith("# EOF\n")

    def test_metric_names_sanitised(self):
        doc = {"counters": {"run": {"a.b-c/d": 1}}}
        assert "repro_a_b_c_d_total" in render(doc)

    def test_empty_doc_is_valid(self):
        assert render({}) == "# EOF\n"


class TestSnapshotter:
    def test_writes_and_final_snapshot_on_stop(self, tmp_path):
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        try:
            obs_metrics.add("demo.calls", 2)
        finally:
            obs_metrics.install(None)
        path = tmp_path / "metrics.prom"
        snap = MetricsSnapshotter(reg, path, interval=3600.0).start()
        snap.stop()
        text = path.read_text()
        assert 'repro_demo_calls_total{scope="run"} 2' in text
        assert text.endswith("# EOF\n")

    def test_write_failure_is_silent(self, tmp_path):
        target = tmp_path / "not-a-dir" / "metrics.prom"
        snap = MetricsSnapshotter(MetricsRegistry(), target, interval=3600.0)
        assert snap._write() is False  # no raise, no file
        assert not target.exists()
