"""CLI-level telemetry tests: flags, byte-identity, and ``repro stats``."""

import json

import pytest

from repro.cli import main


class TestTelemetryFlags:
    def test_telemetry_flags_require_out(self):
        with pytest.raises(SystemExit):
            main(["run", "E11", "--trace"])

    def test_run_with_telemetry_is_byte_identical(self, tmp_path, capsys):
        plain, observed = tmp_path / "plain", tmp_path / "observed"
        assert main(["run", "E11", "--out", str(plain)]) == 0
        assert main(
            ["run", "E11", "--out", str(observed), "--trace", "--metrics"]
        ) == 0
        capsys.readouterr()
        # The invariant: telemetry must never change result bytes.
        assert (observed / "E11.json").read_bytes() == (plain / "E11.json").read_bytes()
        assert (observed / "E11.txt").read_bytes() == (plain / "E11.txt").read_bytes()
        # ... while still recording spans and counters on the side.
        assert (observed / "trace.jsonl").is_file()
        metrics = json.loads((observed / "metrics.json").read_text())
        assert metrics["counters"]
        summary = json.loads((observed / "summary.json").read_text())
        assert summary["telemetry"]["trace"] == "trace.jsonl"
        assert summary["telemetry"]["metrics"] == "metrics.json"
        assert json.loads((plain / "summary.json").read_text()).get("telemetry") is None

    def test_trace_contains_all_span_kinds(self, tmp_path, capsys):
        # E7 drives the executor through a StageTimer stage, so its trace
        # exercises the full hierarchy: run → experiment → stage → task.
        out = tmp_path / "run"
        assert main(["run", "E7", "--out", str(out), "--trace"]) == 0
        capsys.readouterr()
        spans = [
            json.loads(line)
            for line in (out / "trace.jsonl").read_text().splitlines()
            if line.strip()
        ]
        kinds = {s["kind"] for s in spans}
        assert {"run", "experiment", "stage", "task"} <= kinds
        assert any(s["kind"] == "experiment" and s["name"] == "E7" for s in spans)


class TestStatsCommand:
    def test_stats_renders_observed_run(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(
            ["run", "E11", "--out", str(out), "--trace", "--metrics"]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        report = capsys.readouterr().out
        assert "status: PASS" in report
        assert "[E11]" in report
        assert "counters:" in report
        assert "trace:" in report

    def test_stats_on_empty_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path)])
