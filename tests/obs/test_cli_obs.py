"""CLI-level telemetry tests: flags, byte-identity, and ``repro stats``."""

import json

import pytest

from repro.cli import main


class TestTelemetryFlags:
    def test_telemetry_flags_require_out(self):
        with pytest.raises(SystemExit):
            main(["run", "E11", "--trace"])

    def test_run_with_telemetry_is_byte_identical(self, tmp_path, capsys):
        plain, observed = tmp_path / "plain", tmp_path / "observed"
        assert main(["run", "E11", "--out", str(plain)]) == 0
        assert main(
            ["run", "E11", "--out", str(observed), "--trace", "--metrics"]
        ) == 0
        capsys.readouterr()
        # The invariant: telemetry must never change result bytes.
        assert (observed / "E11.json").read_bytes() == (plain / "E11.json").read_bytes()
        assert (observed / "E11.txt").read_bytes() == (plain / "E11.txt").read_bytes()
        # ... while still recording spans and counters on the side.
        assert (observed / "trace.jsonl").is_file()
        metrics = json.loads((observed / "metrics.json").read_text())
        assert metrics["counters"]
        summary = json.loads((observed / "summary.json").read_text())
        assert summary["telemetry"]["trace"] == "trace.jsonl"
        assert summary["telemetry"]["metrics"] == "metrics.json"
        assert json.loads((plain / "summary.json").read_text()).get("telemetry") is None

    def test_trace_contains_all_span_kinds(self, tmp_path, capsys):
        # E7 drives the executor through a StageTimer stage, so its trace
        # exercises the full hierarchy: run → experiment → stage → task.
        out = tmp_path / "run"
        assert main(["run", "E7", "--out", str(out), "--trace"]) == 0
        capsys.readouterr()
        spans = [
            json.loads(line)
            for line in (out / "trace.jsonl").read_text().splitlines()
            if line.strip()
        ]
        kinds = {s["kind"] for s in spans}
        assert {"run", "experiment", "stage", "task"} <= kinds
        assert any(s["kind"] == "experiment" and s["name"] == "E7" for s in spans)


class TestMonitorFlag:
    def test_monitored_run_is_byte_identical_at_any_jobs(self, tmp_path, capsys):
        # E1 drives a real task sweep, so the event bus sees the full
        # lifecycle (stage-start, task-*, stage-done) on every backend.
        plain = tmp_path / "plain"
        assert main(["run", "E1", "--out", str(plain)]) == 0
        for jobs, name in ((1, "m1"), (4, "m4")):
            out = tmp_path / name
            root = tmp_path / f"root-{name}"
            assert main([
                "run", "E1", "--monitor", "--trace", "--jobs", str(jobs),
                "--out", str(out), "--runs-root", str(root),
            ]) == 0
            capsys.readouterr()
            # The invariant extends to the live plane: events, the prom
            # snapshot, and stitched traces never touch result bytes.
            assert (out / "E1.json").read_bytes() == (plain / "E1.json").read_bytes()
            events = list((root / "events").glob("*.jsonl"))
            assert events and any(p.stat().st_size for p in events)
            assert (out / "metrics.prom").read_text().endswith("# EOF\n")
            summary = json.loads((out / "summary.json").read_text())
            assert summary["telemetry"]["events"]
            assert summary["telemetry"]["prom"] == "metrics.prom"
            # --monitor implies a metrics registry even without --metrics.
            assert summary["telemetry"]["metrics"] == "metrics.json"

    def test_monitor_without_out_still_events(self, tmp_path, capsys):
        root = tmp_path / "root"
        assert main([
            "run", "E1", "--monitor", "--runs-root", str(root),
        ]) == 0
        capsys.readouterr()
        assert list((root / "events").glob("*.jsonl"))

    def test_top_and_tail_render_the_monitored_run(self, tmp_path, capsys):
        root = tmp_path / "root"
        assert main([
            "run", "E1", "--monitor", "--runs-root", str(root),
        ]) == 0
        capsys.readouterr()
        assert main(["top", str(root), "--once"]) == 0
        frame = capsys.readouterr().out
        assert "repro top" in frame
        assert "100%" in frame
        assert main(["tail", str(root)]) == 0
        stream = capsys.readouterr().out
        assert "stage-start" in stream and "task-done" in stream


class TestStatsCommand:
    def test_stats_renders_observed_run(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(
            ["run", "E11", "--out", str(out), "--trace", "--metrics"]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        report = capsys.readouterr().out
        assert "status: PASS" in report
        assert "[E11]" in report
        assert "counters:" in report
        assert "trace:" in report

    def test_stats_on_empty_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path)])

    def test_stats_json_document(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(
            ["run", "E11", "--out", str(out), "--trace", "--metrics"]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(out), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert doc["flags"]["scale"] == "quick"
        assert doc["metrics"]["counters"]
        assert doc["spans"]["total"] > 0
        assert "experiment" in doc["spans"]["by_kind"]
        assert doc["degraded_writes"] == {"journal": 0, "counted": 0}
        assert [e["experiment_id"] for e in doc["experiments"]] == ["E11"]

    def test_stats_openmetrics_exposition(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(["run", "E11", "--out", str(out), "--metrics"]) == 0
        capsys.readouterr()
        assert main(["stats", str(out), "--format", "openmetrics"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE" in text
        assert text.endswith("# EOF\n")
        assert 'scope="E11"' in text

    def test_stats_openmetrics_without_metrics_fails(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(["run", "E11", "--out", str(out), "--trace"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="metrics.json"):
            main(["stats", str(out), "--format", "openmetrics"])

    def test_stats_renders_fleet_section_for_dispatch_run(self, tmp_path, capsys):
        out, root = tmp_path / "run", tmp_path / "root"
        assert main([
            "run", "E1", "--out", str(out), "--trace", "--metrics",
            "--executor", "dispatch", "--dispatch-workers", "2",
            "--runs-root", str(root),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        report = capsys.readouterr().out
        assert "fleet:" in report
        assert "executor.dispatch.queues" in report
        assert "workers:" in report
        assert main(["stats", str(out), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["fleet"]["executor.dispatch.queues"] >= 1
        assert doc["spans"]["workers"]
