"""Tests for the metrics registry and its ambient recording API."""

import json

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.add("a")
        reg.add("a", 4)
        reg.add("b", 2.5)
        assert reg.counters == {"a": 5, "b": 2.5}

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.0)
        assert reg.gauges == {"g": 7.0}

    def test_histograms_track_count_sum_buckets(self):
        reg = MetricsRegistry()
        for v in (0.3, 0.4, 3.0):
            reg.observe("h", v)
        hist = reg.histograms["h"]
        assert hist["count"] == 3
        assert abs(hist["sum"] - 3.7) < 1e-12
        # 0.3 and 0.4 share the <=2^-1 bucket; 3.0 lands in <=2^2.
        assert hist["buckets"] == {"<=2^-1": 2, "<=2^2": 1}

    def test_nonpositive_and_nonfinite_bucket_labels(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.0)
        reg.observe("h", float("inf"))
        assert set(reg.histograms["h"]["buckets"]) == {"<=0", "inf"}

    def test_merge_adds_counters_under_prefix(self):
        main, delta = MetricsRegistry(), MetricsRegistry()
        main.add("E1/x", 1)
        delta.add("x", 2)
        delta.add("y", 3)
        main.merge(delta, "E1")
        assert main.counters == {"E1/x": 3, "E1/y": 3}

    def test_merge_combines_histograms(self):
        main, delta = MetricsRegistry(), MetricsRegistry()
        main.observe("h", 1.0)
        delta.observe("h", 1.0)
        main.merge(delta)
        assert main.histograms["h"]["count"] == 2

    def test_grouped_counters_namespaces_by_prefix(self):
        reg = MetricsRegistry()
        reg.add("E1/theorem1.cache_hits", 5)
        reg.add("executor.tasks", 2)
        grouped = reg.grouped_counters()
        assert grouped == {
            "E1": {"theorem1.cache_hits": 5},
            "run": {"executor.tasks": 2},
        }

    def test_to_dict_is_json_serialisable_and_sorted(self):
        reg = MetricsRegistry()
        reg.add("b/z")
        reg.add("a/y")
        reg.observe("a/h", 0.5)
        doc = json.loads(json.dumps(reg.to_dict()))
        assert list(doc["counters"]) == ["a", "b"]
        assert doc["histograms"]["a"]["h"]["count"] == 1

    def test_bool_reflects_emptiness(self):
        reg = MetricsRegistry()
        assert not reg
        reg.add("x")
        assert reg


class TestAmbientApi:
    def test_noop_without_sink(self):
        # Must not raise and must not keep anything anywhere.
        obs_metrics.add("orphan")
        obs_metrics.set_gauge("orphan", 1.0)
        obs_metrics.observe("orphan", 1.0)
        assert not obs_metrics.collecting()

    def test_writes_land_in_installed_sink(self):
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        obs_metrics.add("hits", 2)
        obs_metrics.set_gauge("level", 0.5)
        obs_metrics.observe("secs", 1.5)
        assert reg.counters == {"hits": 2}
        assert reg.gauges == {"level": 0.5}
        assert reg.histograms["secs"]["count"] == 1
        assert obs_metrics.collecting()

    def test_prefix_scope_namespaces_sink_writes(self):
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        with obs_metrics.prefix_scope("E1"):
            obs_metrics.add("calls")
        obs_metrics.add("calls")
        assert reg.counters == {"E1/calls": 1, "calls": 1}

    def test_task_buffer_diverts_writes_from_sink(self):
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        prev = obs_metrics.begin_task()
        obs_metrics.add("inner", 3)
        delta = obs_metrics.end_task(prev)
        assert reg.counters == {}
        assert delta.counters == {"inner": 3}

    def test_merge_task_metrics_applies_current_prefix(self):
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        delta = MetricsRegistry()
        delta.add("inner", 3)
        with obs_metrics.prefix_scope("E7"):
            obs_metrics.merge_task_metrics(delta)
        assert reg.counters == {"E7/inner": 3}

    def test_merge_task_metrics_tolerates_none(self):
        obs_metrics.install(MetricsRegistry())
        obs_metrics.merge_task_metrics(None)  # no-op, no raise

    def test_set_collection_enables_worker_buffering(self):
        # Worker processes have no sink; the collect flag alone must make
        # collecting() true so the executor pushes task buffers.
        assert not obs_metrics.collecting()
        obs_metrics.set_collection(True)
        assert obs_metrics.collecting()
        obs_metrics.set_collection(False)
        assert not obs_metrics.collecting()

    def test_nested_task_buffers_restore_previous(self):
        outer_prev = obs_metrics.begin_task()
        obs_metrics.add("outer")
        inner_prev = obs_metrics.begin_task()
        obs_metrics.add("inner")
        inner = obs_metrics.end_task(inner_prev)
        obs_metrics.add("outer")
        outer = obs_metrics.end_task(outer_prev)
        assert inner.counters == {"inner": 1}
        assert outer.counters == {"outer": 2}
