"""Event-bus unit tests: emission, degradation, heartbeats, ambience."""

import json

import pytest

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.events import EventBus, Heartbeat
from repro.obs.metrics import MetricsRegistry


def _lines(bus: EventBus) -> list:
    return [
        json.loads(line)
        for line in bus.path.read_text().splitlines()
        if line.strip()
    ]


class TestEventBus:
    def test_emits_structured_lines(self, tmp_path):
        bus = EventBus(tmp_path / "events", "run-test-1")
        bus.emit("task-start", stage="sweep", index=3)
        bus.emit("task-done", stage="sweep", index=3, seconds=0.5)
        bus.close()
        docs = _lines(bus)
        assert [d["kind"] for d in docs] == ["task-start", "task-done"]
        assert [d["seq"] for d in docs] == [1, 2]
        first = docs[0]
        assert first["src"] == "run-test-1"
        assert first["stage"] == "sweep"
        assert first["index"] == 3
        # Every event is stamped with identity and wall-clock time.
        assert {"ts", "host", "pid"} <= set(first)

    def test_none_fields_are_dropped(self, tmp_path):
        bus = EventBus(tmp_path / "events", "s")
        bus.emit("stage-start", stage="x", experiment=None)
        bus.close()
        assert "experiment" not in _lines(bus)[0]

    def test_directory_created_lazily(self, tmp_path):
        bus = EventBus(tmp_path / "events", "s")
        assert not (tmp_path / "events").exists()
        bus.emit("hello")
        assert bus.path.is_file()
        bus.close()

    def test_degraded_write_counts_and_warns_once(self, tmp_path):
        # A *file* where the events directory should be makes every
        # open fail — the exhaustion path, minus the full disk.
        (tmp_path / "events").write_text("in the way")
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        bus = EventBus(tmp_path / "events", "s")
        with pytest.warns(UserWarning, match="continuing without live events"):
            bus.emit("task-start", index=0)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")  # a second warning would raise
            bus.emit("task-start", index=1)
        assert reg.grouped_counters()["run"]["events.degraded_writes"] == 2
        assert bus.events_written == 0


class TestAmbientBus:
    def test_emit_without_bus_is_noop(self):
        obs_events.emit("task-start", index=0)  # must not raise

    def test_install_and_emit(self, tmp_path):
        bus = EventBus(tmp_path / "events", "s")
        assert obs_events.install(bus) is None
        obs_events.emit("queue-open", queue="q1")
        assert obs_events.current_bus() is bus
        assert obs_events.current_events_dir() == str(bus.directory)
        previous = obs_events.install(None)
        assert previous is bus
        bus.close()
        assert _lines(bus)[0]["queue"] == "q1"

    def test_ensure_bus_is_idempotent_per_directory(self, tmp_path):
        first = obs_events.ensure_bus(tmp_path / "events", role="worker")
        again = obs_events.ensure_bus(tmp_path / "events", role="worker")
        assert again is first
        other = obs_events.ensure_bus(tmp_path / "elsewhere")
        assert other is not first


class TestHeartbeat:
    def test_disabled_when_period_nonpositive(self, tmp_path):
        obs_events.install(EventBus(tmp_path / "events", "s"))
        assert Heartbeat("worker", period=0).beat(tasks=1) is False

    def test_silent_without_a_bus(self):
        assert Heartbeat("worker", period=0.001).beat(tasks=1) is False

    def test_fires_once_per_period_with_rate(self, tmp_path):
        bus = EventBus(tmp_path / "events", "s")
        obs_events.install(bus)
        pulse = Heartbeat("worker", period=3600.0)
        assert pulse.beat(tasks=0, worker="w") is True
        assert pulse.beat(tasks=5) is False  # within the period
        bus.close()
        docs = _lines(bus)
        assert len(docs) == 1
        beat = docs[0]
        assert beat["kind"] == "heartbeat"
        assert beat["role"] == "worker"
        assert beat["tasks"] == 0
        assert beat["worker"] == "w"
        assert "rss" in beat or beat.get("rss") is None
