"""The layer's hard invariants, exercised through the real executor:

* metric totals are identical for every ``--jobs`` value (task buffers
  merge in task-settle order, which is task order);
* chaos-injected retries increment the retry counters without changing
  a single result value.
"""

import json

import pytest

from repro.engine import chaos
from repro.engine.chaos import ChaosPlan, Fault
from repro.engine.executor import Task, make_tasks, map_tasks
from repro.engine.faults import RetryPolicy
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


def _instrumented_task(task: Task) -> int:
    """Pickleable task that reports into the ambient metrics API."""
    obs_metrics.add("demo.calls")
    obs_metrics.add("demo.work", task.payload)
    obs_metrics.observe("demo.size", float(task.payload))
    return task.payload * 3


def _run_with_registry(jobs: int) -> "tuple[list, dict]":
    reg = MetricsRegistry()
    obs_metrics.install(reg)
    try:
        with obs_metrics.prefix_scope("EX"):
            out = map_tasks(
                _instrumented_task, make_tasks(range(9)), jobs=jobs, stage="sweep"
            )
    finally:
        obs_metrics.install(None)
    return out, reg.grouped_counters()


class TestJobsDeterminism:
    @pytest.mark.parametrize("jobs", [4, 8])
    def test_counters_identical_across_worker_counts(self, jobs):
        serial_out, serial_counters = _run_with_registry(1)
        pool_out, pool_counters = _run_with_registry(jobs)
        assert pool_out == serial_out
        # Counters (including the json rendering) must match exactly;
        # only wall-clock histograms may differ between runs.
        assert pool_counters == serial_counters
        assert json.dumps(pool_counters, sort_keys=True) == json.dumps(
            serial_counters, sort_keys=True
        )

    def test_expected_totals(self):
        _, counters = _run_with_registry(1)
        assert counters["EX"]["demo.calls"] == 9
        assert counters["EX"]["demo.work"] == sum(range(9))
        assert counters["EX"]["executor.tasks"] == 9
        assert counters["EX"]["executor.tasks_executed"] == 9
        # No failures on a clean run → no retry/failure counters at all,
        # which is what keeps the jobs-comparison above exact.
        assert "executor.retries" not in counters["EX"]
        assert "executor.task_failures" not in counters["EX"]

    def test_trace_only_runs_still_return_plain_results(self, tmp_path):
        # With a tracer but no metrics sink the executor still envelopes
        # results (for task spans); callers must see unwrapped values.
        from repro.obs import trace as obs_trace
        from repro.obs.trace import TraceWriter

        writer = TraceWriter(tmp_path / "trace.jsonl")
        obs_trace.install_tracer(writer)
        try:
            out = map_tasks(_instrumented_task, make_tasks(range(4)), jobs=1)
        finally:
            obs_trace.install_tracer(None)
            writer.close()
        assert out == [0, 3, 6, 9]
        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        docs = [json.loads(line) for line in lines]
        assert sum(1 for d in docs if d["kind"] == "task") == 4


class TestDispatchChunkDeterminism:
    """Metrics merged from chunked dispatch work units must equal the
    serial totals — chunking batches *claims*, never settle order."""

    TASK_COUNTERS = (
        "demo.calls", "demo.work", "executor.tasks", "executor.tasks_executed",
    )

    def _task_counters(self, counters: dict) -> dict:
        # Infrastructure counters (queues, leases) legitimately depend
        # on the backend; the determinism contract covers everything a
        # task function reports plus the executor's task totals.
        return {
            name: counters["EX"][name]
            for name in self.TASK_COUNTERS
            if name in counters.get("EX", {})
        }

    @pytest.mark.parametrize("chunk", [2, 4])
    def test_chunked_dispatch_counters_match_serial(self, tmp_path, chunk):
        from repro.engine.backends import DispatchBackend

        serial_out, serial_counters = _run_with_registry(1)

        backend = DispatchBackend(
            tmp_path / "root", local_workers=2, lease_timeout=10.0,
            poll=0.01, chunk=chunk,
        )
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        try:
            with obs_metrics.prefix_scope("EX"):
                out = map_tasks(
                    _instrumented_task, make_tasks(range(9)),
                    executor=backend, stage="sweep",
                )
        finally:
            obs_metrics.install(None)
            backend.close()
        assert out == serial_out
        chunked = reg.grouped_counters()
        assert self._task_counters(chunked) == self._task_counters(serial_counters)
        # Histogram counts (one task_seconds sample per task) also match.
        hists = reg.to_dict()["histograms"]
        assert hists["EX"]["executor.task_seconds"]["count"] == 9


class TestChaosRetryCounters:
    @pytest.fixture(autouse=True)
    def _clean_chaos(self):
        yield
        chaos.uninstall()

    def test_injected_retry_counts_without_perturbing_results(self, tmp_path):
        baseline = map_tasks(_instrumented_task, make_tasks(range(6)), stage="sweep")

        plan = ChaosPlan(
            state_dir=str(tmp_path / "chaos-state"),
            faults=(Fault(kind="raise", stage="sweep", index=2),),
        )
        chaos.install(plan)
        reg = MetricsRegistry()
        obs_metrics.install(reg)
        try:
            out = map_tasks(
                _instrumented_task,
                make_tasks(range(6)),
                stage="sweep",
                on_error="retry",
                retry=FAST_RETRY,
            )
        finally:
            obs_metrics.install(None)

        assert out == baseline  # retry healed the fault; values untouched
        counters = reg.grouped_counters()["run"]
        assert counters["executor.retries"] >= 1
        assert counters["executor.tasks_executed"] == 6
        # The failed attempt's buffer is dropped: only the 6 successful
        # executions ship metrics, so demo.calls stays jobs-invariant.
        assert counters["demo.calls"] == 6
