"""Tests for the ``repro stats`` run-directory renderer."""

import json

import pytest

from repro.obs.stats import RunDirError, render_run_dir


def _write(path, doc):
    path.write_text(json.dumps(doc), encoding="utf-8")


def _summary(**overrides):
    entry = {
        "experiment_id": "E1",
        "title": "Figure 1",
        "passed": True,
        "timings": {"sweep": 1.25, "total": 1.5},
    }
    entry.update(overrides)
    return {
        "scale": "quick",
        "jobs": 4,
        "passed": entry["passed"],
        "experiments": [entry],
    }


class TestRenderRunDir:
    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(RunDirError, match="holds no summary.json"):
            render_run_dir(tmp_path)

    def test_corrupt_summary_raises(self, tmp_path):
        (tmp_path / "summary.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(RunDirError, match="cannot read"):
            render_run_dir(tmp_path)

    def test_summary_renders_flags_status_and_timings(self, tmp_path):
        _write(tmp_path / "summary.json", _summary())
        out = render_run_dir(tmp_path)
        assert "flags: scale='quick', jobs=4" in out
        assert "status: PASS" in out
        assert "[E1] Figure 1  [PASS]" in out
        assert "sweep=1.250s" in out

    def test_fault_records_render(self, tmp_path):
        # Satellite: stats is the reader of the fault metadata past runs
        # have carried in summary.json since the fault-tolerance work.
        entry_faults = {
            "events": [{"kind": "pool_rebuild", "detail": "worker died"}],
            "failures": [
                {
                    "index": 3,
                    "stage": "sweep",
                    "kind": "error",
                    "attempts": 2,
                    "message": "boom",
                }
            ],
        }
        _write(
            tmp_path / "summary.json",
            _summary(passed=False, faults=entry_faults, incomplete=True),
        )
        out = render_run_dir(tmp_path)
        assert "[event] pool_rebuild: worker died" in out
        assert "[lost]  task 3 (stage 'sweep') error after 2 attempt(s): boom" in out
        assert "result is INCOMPLETE" in out

    def test_counters_and_histograms_render(self, tmp_path):
        _write(tmp_path / "summary.json", _summary())
        _write(
            tmp_path / "metrics.json",
            {
                "counters": {
                    "E1": {"theorem1.cache_hits": 12},
                    "run": {"executor.tasks": 8},
                },
                "histograms": {
                    "E1": {
                        "executor.task_seconds": {
                            "count": 8,
                            "sum": 2.0,
                            "buckets": {"<=2^-2": 8},
                        }
                    }
                },
            },
        )
        out = render_run_dir(tmp_path)
        assert "theorem1.cache_hits" in out and "12" in out
        assert "executor.tasks" in out
        assert "histogram E1/executor.task_seconds: count=8" in out

    def test_spans_render_per_experiment_subtree(self, tmp_path):
        _write(tmp_path / "summary.json", _summary())
        spans = [
            {"name": "run", "kind": "run", "id": 1, "parent": None, "t0": 0, "dur": 2.0},
            {"name": "E1", "kind": "experiment", "id": 2, "parent": 1, "t0": 0, "dur": 1.9},
            {"name": "sweep", "kind": "stage", "id": 3, "parent": 2, "t0": 0, "dur": 1.5},
            {"name": "task-0", "kind": "task", "id": 4, "parent": 3, "t0": 0, "dur": 0.7},
            {"name": "task-1", "kind": "task", "id": 5, "parent": 3, "t0": 0.7, "dur": 0.7},
        ]
        (tmp_path / "trace.jsonl").write_text(
            "".join(json.dumps(s) + "\n" for s in spans), encoding="utf-8"
        )
        out = render_run_dir(tmp_path)
        assert "sweep: 1.500s" in out
        assert "tasks: 2 (sum 1.400s, mean 0.7000s)" in out
        assert "trace: 5 span(s) in trace.jsonl" in out

    def test_metrics_only_directory_renders_scopes(self, tmp_path):
        _write(
            tmp_path / "metrics.json",
            {"counters": {"E7": {"mc.samples": 600}}},
        )
        out = render_run_dir(tmp_path)
        assert "[E7]" in out and "mc.samples" in out

    def test_profile_dumps_listed(self, tmp_path):
        _write(tmp_path / "summary.json", _summary())
        (tmp_path / "profile-E1-sweep.pstats").write_bytes(b"")
        out = render_run_dir(tmp_path)
        assert "profile: profile-E1-sweep.pstats" in out
