"""``repro top`` / ``repro tail`` tests over synthetic event files."""

import json

from repro.obs.live import (
    collect_state,
    render_event_line,
    render_top,
    tail,
    top,
)

T0 = 1_700_000_000.0


def _write_events(root, name, events):
    events_dir = root / "events"
    events_dir.mkdir(exist_ok=True)
    with open(events_dir / f"{name}.jsonl", "w") as fh:
        for i, doc in enumerate(events, start=1):
            fh.write(json.dumps({"src": name, "seq": i, **doc}) + "\n")


def _fleet(root):
    """A small synthetic campaign: one stage, two workers, one loss."""
    _write_events(root, "run-h-1", [
        {"ts": T0, "kind": "stage-start", "stage": "sweep", "experiment": "E1",
         "tasks": 4, "pending": 4, "replayed": 0, "backend": "dispatch"},
        {"ts": T0 + 1, "kind": "task-done", "stage": "sweep",
         "experiment": "E1", "index": 0},
        {"ts": T0 + 2, "kind": "task-done", "stage": "sweep",
         "experiment": "E1", "index": 1},
        {"ts": T0 + 2.5, "kind": "reissue", "stage": "sweep", "index": 2,
         "attempt": 2},
    ])
    _write_events(root, "worker-a", [
        {"ts": T0 + 0.5, "kind": "worker-start", "worker": "a"},
        {"ts": T0 + 1.5, "kind": "heartbeat", "role": "worker", "host": "h",
         "pid": 7, "tasks": 2, "tps": 1.5, "rss": 1 << 20},
    ])


class TestCollectState:
    def test_folds_stages_workers_counts_incidents(self, tmp_path):
        _fleet(tmp_path)
        state = collect_state(tmp_path, now=T0 + 3)
        assert state["events"] == 6
        assert state["sources"] == 2
        stage = state["stages"]["E1/sweep"]
        assert stage["total"] == 4
        assert stage["done"] == 2
        assert stage["finished"] is None
        worker = state["workers"]["worker-a"]
        assert worker["tasks"] == 2
        assert worker["last_ts"] == T0 + 1.5
        assert state["counts"]["task-done"] == 2
        assert [e["kind"] for e in state["incidents"]] == ["reissue"]

    def test_torn_tail_line_is_skipped(self, tmp_path):
        _fleet(tmp_path)
        with open(tmp_path / "events" / "run-h-1.jsonl", "a") as fh:
            fh.write('{"ts": 1, "kind": "task-done", "trunc')  # mid-append
        state = collect_state(tmp_path, now=T0 + 3)
        assert state["events"] == 6  # the torn line never counts

    def test_queue_directories_are_scanned(self, tmp_path):
        _fleet(tmp_path)
        qdir = tmp_path / "queues" / "q-001-sweep"
        for sub in ("todo", "claimed", "results"):
            (qdir / sub).mkdir(parents=True)
        (qdir / "todo" / "task-000001.pkl").write_bytes(b"x")
        (qdir / "manifest.json").write_text(
            json.dumps({"stage": "sweep", "status": "open", "tasks": 4})
        )
        state = collect_state(tmp_path, now=T0 + 3)
        assert state["queues"] == [{
            "queue": "q-001-sweep", "stage": "sweep", "status": "open",
            "tasks": 4, "todo": 1, "claimed": 0, "results": 0,
        }]


class TestRenderTop:
    def test_frame_contains_progress_workers_and_incidents(self, tmp_path):
        _fleet(tmp_path)
        state = collect_state(tmp_path, now=T0 + 3)
        frame = render_top(state)
        assert "E1/sweep" in frame
        assert "2/4" in frame and "50%" in frame
        assert "worker-a" in frame and "1MB" in frame
        assert "incidents:" in frame and "reissue" in frame

    def test_stale_worker_is_flagged(self, tmp_path):
        _fleet(tmp_path)
        state = collect_state(tmp_path, now=T0 + 300)
        frame = render_top(state, stale_after=10.0)
        assert "STALE" in frame

    def test_counter_delta_between_frames(self, tmp_path):
        _fleet(tmp_path)
        state = collect_state(tmp_path, now=T0 + 3)
        frame = render_top(state, prev_counts={"task-done": 1})
        assert "since last frame" in frame

    def test_empty_root_renders_hint(self, tmp_path):
        frame = render_top(collect_state(tmp_path, now=T0))
        assert "none yet" in frame


class TestCommands:
    def test_top_once_prints_one_frame(self, tmp_path, capsys):
        _fleet(tmp_path)
        assert top(tmp_path, once=True) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "E1/sweep" in out

    def test_top_missing_root_fails(self, tmp_path, capsys):
        assert top(tmp_path / "nope", once=True) == 1
        assert "no runs root" in capsys.readouterr().err

    def test_tail_prints_merged_stream_in_order(self, tmp_path, capsys):
        _fleet(tmp_path)
        assert tail(tmp_path) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 6
        # Merged across source files by wall clock, not per-file.
        kinds = [line.split()[2] for line in lines]
        assert kinds[0] == "stage-start"
        assert kinds[1] == "worker-start"
        assert kinds[-1] == "reissue"

    def test_render_event_line_hides_bookkeeping_fields(self):
        line = render_event_line({
            "ts": T0, "seq": 9, "src": "worker-a", "kind": "task-done",
            "host": "h", "pid": 1, "stage": "sweep", "index": 5,
        })
        assert "stage=sweep" in line and "index=5" in line
        assert "seq=" not in line and "pid=" not in line
