"""Tests for hierarchical spans, the JSONL trace writer, and StageTimer."""

import json

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import Span, StageTimer, TraceWriter, record_complete, span


def _read_spans(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


class TestSpan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="span kind"):
            Span("x", "banana", 1, None)

    def test_span_measures_without_tracer(self):
        with span("work", kind="stage") as sp:
            pass
        assert sp.duration >= 0.0
        assert sp.kind == "stage"

    def test_nesting_assigns_parent_ids(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.jsonl")
        obs_trace.install_tracer(writer)
        with span("outer", kind="run") as outer:
            with span("mid", kind="experiment") as mid:
                with span("leaf", kind="stage") as leaf:
                    pass
        writer.close()
        assert mid.parent_id == outer.span_id
        assert leaf.parent_id == mid.span_id
        docs = {d["name"]: d for d in _read_spans(tmp_path / "trace.jsonl")}
        # Inner spans close (and emit) first; parents reference outer ids.
        assert docs["leaf"]["parent"] == docs["mid"]["id"]
        assert docs["mid"]["parent"] == docs["outer"]["id"]
        assert docs["outer"]["parent"] is None

    def test_emitted_doc_shape(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.jsonl")
        obs_trace.install_tracer(writer)
        with span("E1", kind="experiment", scale="quick"):
            pass
        writer.close()
        (doc,) = _read_spans(tmp_path / "trace.jsonl")
        assert doc["name"] == "E1" and doc["kind"] == "experiment"
        assert doc["t0"] >= 0.0 and doc["dur"] >= 0.0
        assert doc["meta"] == {"scale": "quick"}
        assert writer.spans_written == 1

    def test_current_experiment_tracks_innermost(self):
        assert obs_trace.current_experiment() is None
        with span("E5", kind="experiment"):
            with span("sweep", kind="stage"):
                assert obs_trace.current_experiment() == "E5"
        assert obs_trace.current_experiment() is None

    def test_record_complete_emits_pre_measured_task(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.jsonl")
        obs_trace.install_tracer(writer)
        with span("sweep", kind="stage") as parent:
            record_complete("task-3", "task", 0.25, index=3)
        writer.close()
        docs = {d["name"]: d for d in _read_spans(tmp_path / "trace.jsonl")}
        task = docs["task-3"]
        assert task["kind"] == "task"
        assert task["dur"] == 0.25
        assert task["parent"] == parent.span_id
        assert task["meta"] == {"index": 3}

    def test_record_complete_noop_untraced(self):
        record_complete("task-0", "task", 0.1)  # must not raise


class TestStageTimer:
    def test_timings_accumulate_per_stage(self):
        timer = StageTimer()
        with timer.stage("sweep"):
            pass
        with timer.stage("sweep"):
            pass
        with timer.stage("aggregate"):
            pass
        assert set(timer.timings) == {"sweep", "aggregate"}
        assert timer.timings["sweep"] >= 0.0

    def test_stages_emit_spans_when_traced(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.jsonl")
        obs_trace.install_tracer(writer)
        timer = StageTimer()
        with timer.stage("sweep"):
            pass
        writer.close()
        (doc,) = _read_spans(tmp_path / "trace.jsonl")
        assert doc["name"] == "sweep" and doc["kind"] == "stage"
        # The recorded timing is the span's measured duration.
        assert doc["dur"] == round(timer.timings["sweep"], 6)
