"""Serial-vs-parallel determinism of the refactored experiment drivers.

The executor contract: every task re-derives its randomness from the
experiment's root seed and its own indices, and results are aggregated
in task order — so the number of worker processes must not change a
single byte of the result JSON.
"""

import numpy as np

from repro.experiments import Figure1Config
from repro.experiments.capacity_compare import run_capacity_compare
from repro.experiments.figure1 import run_figure1
from repro.experiments.theorem2 import run_theorem2
from repro.fading.montecarlo import estimate_success_probability
from repro.fading.success import success_probability

TINY_FIG1 = Figure1Config(
    num_networks=2,
    num_links=25,
    area=1000.0 * (25 / 100) ** 0.5,
    num_transmit_seeds=4,
    probabilities=(0.2, 0.5, 0.8),
)


class TestDriverJobsParity:
    def test_figure1_jobs_1_equals_jobs_4(self):
        serial = run_figure1(TINY_FIG1, jobs=1)
        parallel = run_figure1(TINY_FIG1, jobs=4)
        assert serial.to_json() == parallel.to_json()

    def test_theorem2_jobs_1_equals_jobs_4(self):
        kwargs = dict(sizes=(12, 20), trials=30)
        serial = run_theorem2(jobs=1, **kwargs)
        parallel = run_theorem2(jobs=4, **kwargs)
        assert serial.to_json() == parallel.to_json()

    def test_capacity_compare_jobs_1_equals_jobs_4(self):
        kwargs = dict(config=TINY_FIG1, nested_n=6, opt_restarts=2)
        serial = run_capacity_compare(jobs=1, **kwargs)
        parallel = run_capacity_compare(jobs=4, **kwargs)
        assert serial.to_json() == parallel.to_json()

    def test_timings_not_serialized(self):
        result = run_figure1(TINY_FIG1, jobs=1)
        assert result.timings  # populated ...
        assert "timings" not in result.to_json()  # ... but never in the JSON


class TestBatchedKernelStatistics:
    def test_batched_estimator_matches_exact_law(self, paper_instance):
        """The batched Monte-Carlo kernel converges to Theorem 1's exact
        per-link success probabilities (the seed's loop kernel target)."""
        q = np.full(paper_instance.n, 0.5)
        exact = success_probability(paper_instance, q, beta=1.0)
        est = estimate_success_probability(
            paper_instance, q, beta=1.0, num_samples=40000, rng=7
        )
        # 5-sigma Bernoulli band per link.
        band = 5.0 * np.sqrt(np.maximum(exact * (1 - exact), 1e-4) / 40000)
        np.testing.assert_array_less(np.abs(est - exact), band + 1e-12)
