"""Registry parity: every DESIGN.md experiment is registered exactly once."""

import pytest

from repro.engine.registry import (
    ExperimentSpec,
    all_specs,
    get_spec,
    register,
    scaled_config,
    seed_kwargs,
)
from repro.experiments.config import Figure1Config

DESIGN_IDS = [f"E{k}" for k in range(1, 23)]


class TestParity:
    def test_all_design_experiments_registered_exactly_once(self):
        # dict keys are unique, so matching the DESIGN.md §3 id list
        # exactly means each driver registered once and none is missing.
        assert list(all_specs()) == DESIGN_IDS

    def test_specs_are_well_formed(self):
        for exp_id, spec in all_specs().items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.experiment_id == exp_id
            assert spec.title
            assert callable(spec.runner)
            kwargs = spec.make_kwargs("quick")
            assert isinstance(kwargs, dict)

    def test_sweep_drivers_support_jobs(self):
        specs = all_specs()
        for exp_id in ("E1", "E3", "E5", "E6", "E7", "E13"):
            assert specs[exp_id].supports_jobs, exp_id


class TestLookup:
    def test_case_insensitive(self):
        assert get_spec("e1") is get_spec("E1")

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_spec("E99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("E1", title="dup", config=lambda scale, seed: {})(lambda: None)


class TestConfigHelpers:
    def test_scaled_config_scales(self):
        quick = scaled_config(Figure1Config, "quick")
        paper = scaled_config(Figure1Config, "paper")
        assert quick == Figure1Config.quick()
        assert paper == Figure1Config.paper()

    def test_scaled_config_seed_override(self):
        cfg = scaled_config(Figure1Config, "quick", seed=123)
        assert cfg.seed == 123
        assert scaled_config(Figure1Config, "quick").seed != 123

    def test_scaled_config_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            scaled_config(Figure1Config, "huge")

    def test_seed_kwargs(self):
        assert seed_kwargs(None) == {}
        assert seed_kwargs(5) == {"seed": 5}

    def test_make_kwargs_threads_seed(self):
        kwargs = get_spec("E1").make_kwargs("quick", seed=321)
        assert kwargs["config"].seed == 321
        kwargs = get_spec("E11").make_kwargs("quick", seed=321)
        assert kwargs["seed"] == 321

    def test_run_records_total_timing(self):
        result = get_spec("E11").run("quick")
        assert result.experiment_id == "E11"
        assert "total" in result.timings
        assert result.timings["total"] > 0.0
