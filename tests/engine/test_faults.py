"""Fault-injection tests: retry, skip, timeout, crash recovery, journal
resume, and the numerical-guard layer.

Each test installs a deterministic :class:`~repro.engine.chaos.ChaosPlan`
(or none) and asserts the engine's recovery path produces the same
numbers an undisturbed run would — the core promise of the
fault-tolerance layer.
"""

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core.sinr import SINRInstance
from repro.engine import chaos, guards
from repro.engine.chaos import ChaosError, ChaosPlan, Fault
from repro.engine.executor import Task, get_worker_context, make_tasks, map_tasks
from repro.engine.faults import (
    ExecutionPolicy,
    RetryPolicy,
    RunReport,
    TaskFailure,
    completed,
    execution_scope,
    is_failure,
    usable_results,
)
from repro.engine.journal import JournalError, RunJournal
from repro.fading.success import Theorem1Kernel

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


@pytest.fixture(autouse=True)
def _clean_chaos():
    yield
    chaos.uninstall()


def _install(tmp_path, *faults) -> ChaosPlan:
    plan = ChaosPlan(state_dir=str(tmp_path / "chaos-state"), faults=tuple(faults))
    chaos.install(plan)
    return plan


def _double(task: Task) -> int:
    return task.payload * 2


def _negative_boom(task: Task) -> int:
    if task.payload < 0:
        raise ValueError(f"payload {task.payload} rejected")
    return task.payload * 2


def _journaled_double(task: Task) -> int:
    """Doubles the payload and logs each execution to the context dir,
    so tests can count how many tasks actually (re-)ran."""
    log_dir = Path(get_worker_context())
    with open(log_dir / "executions.log", "a", encoding="utf-8") as fh:
        fh.write(f"{task.index}\n")
    return task.payload * 2


def _executions(log_dir) -> "list[int]":
    path = Path(log_dir) / "executions.log"
    if not path.exists():
        return []
    return [int(line) for line in path.read_text().splitlines()]


class TestOnErrorModes:
    def test_raise_is_default_and_propagates(self):
        with pytest.raises(ValueError, match="payload -1 rejected"):
            map_tasks(_negative_boom, make_tasks([1, -1, 3]))

    def test_skip_records_structured_failure(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            out = map_tasks(_negative_boom, make_tasks([1, -1, 3]), on_error="skip")
        assert out[0] == 2 and out[2] == 6
        failure = out[1]
        assert is_failure(failure)
        assert failure.index == 1
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert "payload -1 rejected" in failure.message
        assert completed(out) == [2, 6]
        assert usable_results(out, "test sweep") == [2, 6]

    def test_usable_results_raises_when_all_slots_failed(self):
        fails = [
            TaskFailure(i, "s", "error", "ValueError", "boom", 1) for i in range(3)
        ]
        with pytest.raises(RuntimeError, match="all 3 task"):
            usable_results(fails, "the doomed sweep")

    def test_retry_recovers_from_transient_fault(self, tmp_path):
        # A once-only injected crash: attempt 1 of task 1 raises, the
        # retry runs clean — the sweep completes with full results.
        _install(tmp_path, Fault(kind="raise", stage="sweep", index=1))
        out = map_tasks(
            _double, make_tasks([5, 6, 7]), on_error="retry", retry=FAST_RETRY
        )
        assert out == [10, 12, 14]

    def test_retry_exhausts_into_failure(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            out = map_tasks(
                _negative_boom,
                make_tasks([-1, 4]),
                on_error="retry",
                retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            )
        assert is_failure(out[0])
        assert out[0].attempts == 2
        assert out[1] == 8

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            map_tasks(_double, make_tasks([1]), on_error="explode")


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        p = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0, jitter=0.5)
        assert p.delay(3, 2) == p.delay(3, 2)
        assert p.delay(3, 2) != p.delay(4, 2)  # de-synchronised across tasks

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(max_attempts=9, base_delay=0.1, max_delay=0.4, jitter=0.0)
        delays = [p.delay(0, k) for k in range(1, 6)]
        assert delays == sorted(delays)
        assert delays[-1] <= 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestAmbientPolicy:
    def test_execution_scope_supplies_knobs(self):
        report = RunReport()
        policy = ExecutionPolicy(on_error="skip", report=report)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with execution_scope(policy):
                out = map_tasks(_negative_boom, make_tasks([1, -2]))
        assert out[0] == 2 and is_failure(out[1])
        assert report.incomplete
        assert report.failures[0].index == 1
        assert report.to_dict()["failures"][0]["error_type"] == "ValueError"

    def test_explicit_knob_overrides_scope(self):
        with execution_scope(ExecutionPolicy(on_error="skip")):
            with pytest.raises(ValueError):
                map_tasks(_negative_boom, make_tasks([-1]), on_error="raise")


class TestPoolFaults:
    def test_hung_task_times_out_and_pool_recovers(self, tmp_path):
        _install(
            tmp_path,
            Fault(kind="hang", stage="sweep", index=1, hang_seconds=30.0),
        )
        report = RunReport()
        policy = ExecutionPolicy(on_error="skip", timeout=1.5, report=report)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with execution_scope(policy):
                out = map_tasks(_double, make_tasks([1, 2, 3, 4]), jobs=2)
        assert [out[0], out[2], out[3]] == [2, 6, 8]
        assert is_failure(out[1]) and out[1].kind == "timeout"
        assert any(e["kind"] == "timeout" for e in report.events)

    def test_worker_death_retry_rebuilds_pool(self, tmp_path):
        _install(tmp_path, Fault(kind="exit", stage="sweep", index=2))
        report = RunReport()
        policy = ExecutionPolicy(on_error="retry", retry=FAST_RETRY, report=report)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with execution_scope(policy):
                out = map_tasks(_double, make_tasks([1, 2, 3, 4]), jobs=2)
        assert out == [2, 4, 6, 8]  # nothing lost despite the dead worker
        assert any(e["kind"] == "pool-broken" for e in report.events)

    def test_worker_death_skip_degrades_to_serial(self, tmp_path):
        # A persistent killer fault: the pool cannot survive it, so the
        # engine falls back to the serial backend, where the injected
        # death is downgraded to an exception and skipped.
        _install(tmp_path, Fault(kind="exit", stage="sweep", index=1, once=False))
        report = RunReport()
        policy = ExecutionPolicy(on_error="skip", report=report)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with execution_scope(policy):
                out = map_tasks(_double, make_tasks([1, 2, 3, 4]), jobs=2)
        assert [out[0], out[2], out[3]] == [2, 6, 8]
        assert is_failure(out[1]) and out[1].error_type == "ChaosError"
        kinds = [e["kind"] for e in report.events]
        assert "pool-broken" in kinds and "degraded-serial" in kinds


class TestJournal:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path):
        tasks = make_tasks([3, 1, 4, 1, 5, 9])
        (tmp_path / "c").mkdir()
        clean = map_tasks(_journaled_double, tasks, context=str(tmp_path / "c"))

        # First attempt: tasks 3 and 4 keep crashing (persistent fault),
        # the rest land in the journal.
        _install(
            tmp_path,
            Fault(kind="raise", stage="sweep", index=3, once=False),
            Fault(kind="raise", stage="sweep", index=4, once=False),
        )
        journal = RunJournal.create(tmp_path / "runs", "r1", {"who": "test"})
        log1 = tmp_path / "log1"
        log1.mkdir()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            first = map_tasks(
                _journaled_double,
                tasks,
                context=str(log1),
                on_error="skip",
                journal=journal,
            )
        assert is_failure(first[3]) and is_failure(first[4])
        chaos.uninstall()

        # Resume: only the two missing tasks execute; the aggregate is
        # bit-identical to the uninterrupted run.
        resumed_journal = RunJournal.open(tmp_path / "runs", "r1")
        log2 = tmp_path / "log2"
        log2.mkdir()
        second = map_tasks(
            _journaled_double, tasks, context=str(log2), journal=resumed_journal
        )
        assert second == clean
        assert sorted(_executions(log2)) == [3, 4]

    def test_full_journal_replays_with_zero_executions(self, tmp_path):
        tasks = make_tasks([2, 7, 1])
        journal = RunJournal.create(tmp_path / "runs", "full", {})
        log1 = tmp_path / "log1"
        log1.mkdir()
        first = map_tasks(
            _journaled_double, tasks, context=str(log1), journal=journal
        )
        replay_journal = RunJournal.open(tmp_path / "runs", "full")
        log2 = tmp_path / "log2"
        log2.mkdir()
        replay = map_tasks(
            _journaled_double, tasks, context=str(log2), journal=replay_journal
        )
        assert replay == first
        assert _executions(log2) == []

    def test_corrupt_record_is_skipped_and_rerun(self, tmp_path):
        tasks = make_tasks([2, 7, 1])
        journal = RunJournal.create(tmp_path / "runs", "c", {})
        log1 = tmp_path / "log1"
        log1.mkdir()
        first = map_tasks(
            _journaled_double, tasks, context=str(log1), journal=journal
        )
        # Tear one record mid-write.
        record = next((tmp_path / "runs" / "c").glob("stages/*/task-000001.json"))
        record.write_text(record.read_text()[: len(record.read_text()) // 2])

        reopened = RunJournal.open(tmp_path / "runs", "c")
        log2 = tmp_path / "log2"
        log2.mkdir()
        with pytest.warns(UserWarning, match="corrupt"):
            again = map_tasks(
                _journaled_double, tasks, context=str(log2), journal=reopened
            )
        assert again == first
        assert _executions(log2) == [1]  # only the torn record re-ran

    def test_checksum_mismatch_detected(self, tmp_path):
        journal = RunJournal.create(tmp_path / "runs", "sum", {})
        journal.record("sweep", 0, {"x": 1})
        record = next((tmp_path / "runs" / "sum").glob("stages/*/task-000000.json"))
        doc = json.loads(record.read_text())
        doc["sha256"] = "0" * 64
        record.write_text(json.dumps(doc))
        reopened = RunJournal.open(tmp_path / "runs", "sum")
        with pytest.warns(UserWarning, match="checksum"):
            assert reopened.load_stage("sweep", 1) == {}

    def test_mismatched_config_rejected(self, tmp_path):
        journal = RunJournal.create(tmp_path / "runs", "m", {})
        tasks = make_tasks(range(6))
        map_tasks(_double, tasks, journal=journal)
        reopened = RunJournal.open(tmp_path / "runs", "m")
        with pytest.raises(JournalError, match="different config"):
            map_tasks(_double, make_tasks(range(3)), journal=reopened)

    def test_duplicate_stage_name_rejected(self, tmp_path):
        journal = RunJournal.create(tmp_path / "runs", "d", {})
        map_tasks(_double, make_tasks([1]), journal=journal, stage="s")
        with pytest.raises(JournalError, match="distinct stage name"):
            map_tasks(_double, make_tasks([1]), journal=journal, stage="s")

    def test_create_refuses_existing_run_id(self, tmp_path):
        RunJournal.create(tmp_path / "runs", "dup", {})
        with pytest.raises(JournalError, match="--resume dup"):
            RunJournal.create(tmp_path / "runs", "dup", {})

    def test_open_missing_run_lists_known_ids(self, tmp_path):
        RunJournal.create(tmp_path / "runs", "alpha", {})
        with pytest.raises(JournalError, match="alpha"):
            RunJournal.open(tmp_path / "runs", "nope")


def _fresh_instance(n: int = 4) -> SINRInstance:
    gains = np.full((n, n), 0.3)
    np.fill_diagonal(gains, 25.0)
    return SINRInstance(gains, noise=0.5)


class TestGuards:
    def test_off_by_default_lets_nan_through(self):
        arr = np.array([0.2, np.nan, 0.7])
        assert guards.get_guard_mode() == "off"
        assert guards.check_probabilities(arr, "site") is arr

    def test_strict_raises_with_link_indices(self):
        arr = np.array([0.2, np.nan, 0.7])
        with guards.guard_scope("strict"):
            with pytest.raises(guards.GuardViolation, match=r"link\(s\) \[1\]"):
                guards.check_probabilities(arr, "mykernel", beta=2.0)

    def test_warn_mode_warns_and_passes_value(self):
        arr = np.array([[1.5, 0.5]])
        with guards.guard_scope("warn"):
            with pytest.warns(guards.GuardWarning, match="mykernel"):
                out = guards.check_probabilities(arr, "mykernel")
        assert out is arr

    def test_check_finite_allows_inf_when_asked(self):
        arr = np.array([1.0, np.inf])
        with guards.guard_scope("strict"):
            assert guards.check_finite(arr, "sinr", allow_inf=True) is arr
            with pytest.raises(guards.GuardViolation):
                guards.check_finite(arr, "sinr")

    def test_theorem1_nan_injection_caught_strict(self, tmp_path):
        # Chaos poisons link 2 of the Theorem-1 output; strict guards
        # catch it at the kernel boundary, naming the link and the
        # kernel parameters.
        _install(
            tmp_path,
            Fault(kind="nan", site="theorem1.conditional", links=(2,), once=False),
        )
        kernel = Theorem1Kernel(_fresh_instance(), beta=1.0)
        q = np.full(4, 0.5)
        with guards.guard_scope("strict"):
            with pytest.raises(guards.GuardViolation) as err:
                kernel.conditional(q)
        message = str(err.value)
        assert "theorem1.conditional" in message
        assert "[2]" in message
        assert "beta_min=1.0" in message and "noise=0.5" in message

    def test_theorem1_nan_injection_silent_when_off(self, tmp_path):
        _install(
            tmp_path,
            Fault(kind="nan", site="theorem1.conditional", links=(2,), once=False),
        )
        kernel = Theorem1Kernel(_fresh_instance(), beta=1.0)
        out = kernel.conditional(np.full(4, 0.5))
        assert np.isnan(out[2])  # corruption happened, guards were off

    def test_guard_checks_never_mutate_clean_values(self):
        kernel = Theorem1Kernel(_fresh_instance(), beta=1.0)
        q = np.full(4, 0.5)
        baseline = kernel.conditional(q)
        with guards.guard_scope("strict"):
            checked = Theorem1Kernel(_fresh_instance(), beta=1.0).conditional(q)
        np.testing.assert_array_equal(baseline, checked)


class TestChaosPlanRoundTrip:
    def test_plan_survives_json(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path),
            faults=(
                Fault(kind="raise", stage="sweep", index=3),
                Fault(kind="nan", site="k", links=(1, 2), once=False),
            ),
        )
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_install_from_env(self, tmp_path, monkeypatch):
        plan = ChaosPlan(state_dir=str(tmp_path / "s"), faults=())
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan.to_dict()))
        monkeypatch.setenv(chaos.CHAOS_ENV, str(plan_file))
        assert chaos.install_from_env() == plan
        assert chaos.active()

    def test_exit_fault_downgrades_in_main_process(self, tmp_path):
        _install(tmp_path, Fault(kind="exit", stage="s", index=0))
        with pytest.raises(ChaosError, match="downgraded"):
            chaos.on_task_start("s", 0)

    def test_bad_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            Fault(kind="meltdown")
