"""Torn-write robustness, property-tested.

A power cut or full disk can leave any on-disk record truncated at an
arbitrary byte, or garbled by a partial overwrite.  Hypothesis drives
both corruptions at arbitrary offsets into journal ``task-*.json``
records and dispatch ``lease-*.json`` leases, and asserts the two
durable-state readers hold their contract:

* ``RunJournal.load_stage`` never raises — a damaged record is skipped
  (counted, warned) and its task simply re-runs;
* ``LeaseLedger.load`` never raises — a damaged lease reads as
  "unclaimed";
* a resumed sweep over a damaged journal still produces bytes
  identical to a clean run — damage costs re-execution, never
  correctness.
"""

import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.executor import make_tasks, map_tasks
from repro.engine.journal import LeaseLedger, RunJournal

COUNT = 6


def _norm(task):
    return float(task.payload) * 0.5 + 97.0


def _clean_bytes():
    tasks = make_tasks(range(COUNT), root_seed=7, name="torn")
    return json.dumps(map_tasks(_norm, tasks), sort_keys=True)


def _fresh_journal(tmp_path_factory):
    root = tmp_path_factory.mktemp("torn-runs")
    journal = RunJournal.create(root, "r", {})
    tasks = make_tasks(range(COUNT), root_seed=7, name="torn")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        map_tasks(_norm, tasks, stage="s", journal=journal)
    return root, sorted((journal.run_dir / "stages").rglob("task-*.json"))


# Damage: truncate at an offset, or splice arbitrary bytes at an offset.
_damage = st.one_of(
    st.tuples(st.just("truncate"), st.integers(0, 400), st.binary(max_size=0)),
    st.tuples(st.just("garble"), st.integers(0, 400), st.binary(min_size=1, max_size=32)),
)


def _apply(path, damage):
    mode, offset, blob = damage
    data = path.read_bytes()
    offset = min(offset, len(data))
    if mode == "truncate":
        path.write_bytes(data[:offset])
    else:
        path.write_bytes(data[:offset] + blob + data[offset + len(blob):])


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(victim=st.integers(0, COUNT - 1), damage=_damage)
def test_damaged_record_skipped_and_resume_byte_identical(
    tmp_path_factory, victim, damage
):
    root, records = _fresh_journal(tmp_path_factory)
    _apply(records[victim], damage)

    resumed = RunJournal.open(root, "r")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # corrupt-record warning is fine
        loaded = resumed.load_stage("s", COUNT)
    # Never raises; every surviving record is intact and correctly keyed.
    assert set(loaded) <= set(range(COUNT))

    # The resumed sweep re-runs the gaps and lands on identical bytes.
    tasks = make_tasks(range(COUNT), root_seed=7, name="torn")
    again = RunJournal.open(root, "r")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        out = map_tasks(_norm, tasks, stage="s", journal=again)
    assert json.dumps(out, sort_keys=True) == _clean_bytes()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(damage=_damage)
def test_damaged_lease_reads_as_unclaimed(tmp_path_factory, damage):
    ledger = LeaseLedger(tmp_path_factory.mktemp("torn-leases"))
    ledger.claim(3, 1, "w0")
    assert ledger.load(3) == {"index": 3, "attempt": 1, "worker": "w0"}

    _apply(ledger.directory / "lease-000003.json", damage)
    got = ledger.load(3)  # must not raise, whatever the bytes are
    assert got is None or isinstance(got, dict)


def test_empty_record_file_is_just_a_gap(tmp_path_factory):
    root, records = _fresh_journal(tmp_path_factory)
    records[0].write_bytes(b"")
    resumed = RunJournal.open(root, "r")
    with pytest.warns(UserWarning, match="corrupt"):
        loaded = resumed.load_stage("s", COUNT)
    assert 0 not in loaded
    assert resumed.corrupt_records == 1
    assert resumed.health()["corrupt_records"] == 1
