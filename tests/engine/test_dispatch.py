"""Dispatch-backend tests: the file-queue protocol, external ``repro
worker`` processes, lease heartbeats, and worker-loss recovery.

Workers here are real subprocesses (``python -m repro worker``) or the
backend's own ``local_workers`` — the same path a multi-host deployment
uses, minus the network filesystem.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import chaos
from repro.engine.backends import DispatchBackend, resolve_executor
from repro.engine.backends.dispatch import (
    _parse_task_name,
    _task_name,
    sleep_echo_task,
)
from repro.engine.chaos import ChaosPlan, Fault
from repro.engine.executor import Task, make_tasks, map_tasks
from repro.engine.faults import RetryPolicy, is_failure

@pytest.fixture(autouse=True)
def _clean_chaos():
    yield
    chaos.uninstall()


def _double(task: Task) -> int:
    return task.payload * 2


def _boom(task: Task) -> int:
    raise ValueError(f"rejected payload {task.payload}")


def _boom_on_three(task: Task) -> int:
    if task.payload == 3:
        raise ValueError("rejected payload 3")
    return task.payload * 2


def _spawn_worker(root, name: str) -> subprocess.Popen:
    """A real external worker: the exact process a second host would run."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker", str(root),
            "--name", name, "--poll", "0.02", "--max-idle", "60",
        ],
        env=env,
        cwd=str(Path(__file__).resolve().parents[2]),
    )


class TestTaskNames:
    def test_round_trip(self):
        assert _parse_task_name(_task_name(7, 2)) == (7, 2)
        assert _parse_task_name(_task_name(123456, 11)) == (123456, 11)

    def test_garbage_rejected(self):
        assert _parse_task_name("task-xx-a1.pkl") is None
        assert _parse_task_name("lease-000001.json") is None


class TestDispatchBasics:
    def test_local_workers_execute_and_queue_is_removed(self, tmp_path):
        root = tmp_path / "runs"
        backend = DispatchBackend(root, local_workers=2, poll=0.02)
        try:
            out = map_tasks(_double, make_tasks([3, 1, 2]), executor=backend)
        finally:
            backend.close()
        assert out == [6, 2, 4]
        assert list((root / "queues").iterdir()) == []

    def test_external_worker_serves_queue(self, tmp_path):
        root = tmp_path / "runs"
        worker = _spawn_worker(root, "ext-1")
        backend = DispatchBackend(root, poll=0.02)
        try:
            out = map_tasks(
                sleep_echo_task, make_tasks([{"v": i} for i in range(6)]),
                executor=backend,
            )
        finally:
            backend.close()
            worker.terminate()
            worker.wait(timeout=10)
        assert out == [{"v": i} for i in range(6)]

    def test_backend_reused_across_stages(self, tmp_path):
        backend = DispatchBackend(tmp_path / "runs", local_workers=2, poll=0.02)
        try:
            first = map_tasks(_double, make_tasks([1, 2]), executor=backend,
                              stage="one")
            second = map_tasks(_double, make_tasks([5]), executor=backend,
                               stage="two")
        finally:
            backend.close()
        assert (first, second) == ([2, 4], [10])

    def test_rejects_nonpositive_lease_timeout(self, tmp_path):
        with pytest.raises(ValueError, match="lease_timeout"):
            DispatchBackend(tmp_path, lease_timeout=0.0)

    def test_resolve_executor_dispatch_uses_env_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_ROOT", str(tmp_path / "env-root"))
        backend = resolve_executor("dispatch", 1, 1)
        assert backend.root == tmp_path / "env-root"


class TestDispatchChunking:
    """Per-claim task chunking: workers claim work units of consecutive
    tasks, stream one envelope per member, and results stay byte-
    identical to the serial backend at every chunk size."""

    def test_rejects_chunk_below_one(self, tmp_path):
        with pytest.raises(ValueError, match="chunk"):
            DispatchBackend(tmp_path, chunk=0)

    def test_auto_chunk_scales_with_tasks_and_workers(self, tmp_path):
        auto = DispatchBackend(tmp_path, local_workers=2)
        assert auto._resolve_chunk(4) == 1  # fewer tasks than 4x workers
        assert auto._resolve_chunk(64) == 8
        assert auto._resolve_chunk(10_000) == 16  # clamped
        explicit = DispatchBackend(tmp_path, chunk=5)
        assert explicit._resolve_chunk(10_000) == 5

    @pytest.mark.parametrize("chunk", [1, 3, 16, None])
    def test_results_byte_identical_to_serial(self, tmp_path, chunk):
        tasks = make_tasks(range(10), root_seed=7)
        expected = map_tasks(_double, tasks, executor="serial", stage="chunked")
        backend = DispatchBackend(
            tmp_path / "runs", local_workers=2, poll=0.02, chunk=chunk
        )
        try:
            out = map_tasks(_double, tasks, executor=backend, stage="chunked")
        finally:
            backend.close()
        assert pickle.dumps(out) == pickle.dumps(expected)

    def test_failed_member_does_not_poison_unit_siblings(self, tmp_path):
        # Index 3 fails inside a 4-task unit; its siblings' envelopes
        # settle normally and only index 3 carries a failure.
        backend = DispatchBackend(
            tmp_path / "runs", local_workers=1, poll=0.02, chunk=4
        )
        try:
            out = map_tasks(
                _boom_on_three, make_tasks(range(6)), executor=backend,
                on_error="skip",
            )
        finally:
            backend.close()
        assert [out[i] for i in (0, 1, 2, 4, 5)] == [0, 2, 4, 8, 10]
        assert is_failure(out[3]) and out[3].error_type == "ValueError"

    def test_chunked_worker_lost_reissues_survivors(self, tmp_path):
        """Kill a worker mid-unit: already-streamed member envelopes
        stand, the unfinished members are re-issued as singleton units,
        and the sweep still matches serial bytes."""
        tasks = make_tasks(range(5), root_seed=13)
        expected = map_tasks(_double, tasks, executor="serial", stage="clean")
        chaos.install(
            ChaosPlan(
                state_dir=str(tmp_path / "chaos"),
                faults=(Fault(kind="worker-lost", stage="wl-chunk", index=2),),
            )
        )
        backend = DispatchBackend(
            tmp_path / "runs", local_workers=2, lease_timeout=0.8, poll=0.02,
            chunk=3,
        )
        try:
            with pytest.warns(UserWarning, match="stopped heartbeating"):
                out = map_tasks(_double, tasks, executor=backend,
                                stage="wl-chunk")
        finally:
            backend.close()
            chaos.uninstall()
        assert pickle.dumps(out) == pickle.dumps(expected)


class TestDispatchFaults:
    def test_worker_exception_propagates_under_raise(self, tmp_path):
        backend = DispatchBackend(tmp_path / "runs", local_workers=1, poll=0.02)
        try:
            with pytest.raises(ValueError, match="rejected payload 4"):
                map_tasks(_boom, make_tasks([4]), executor=backend)
        finally:
            backend.close()

    def test_persistent_failure_settles_structured_slot(self, tmp_path):
        backend = DispatchBackend(tmp_path / "runs", local_workers=1, poll=0.02)
        try:
            out = map_tasks(
                _boom, make_tasks([9]), executor=backend,
                on_error="retry", retry=RetryPolicy(max_attempts=2,
                                                    base_delay=0.001),
            )
        finally:
            backend.close()
        failure = out[0]
        assert is_failure(failure)
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert failure.attempts == 2

    def test_hung_task_times_out_into_failure_slot(self, tmp_path):
        backend = DispatchBackend(tmp_path / "runs", local_workers=2, poll=0.02)
        payloads = [{"v": 0}, {"v": 1, "sleep": 30.0}, {"v": 2}]
        try:
            with pytest.warns(UserWarning, match="wall-clock budget"):
                out = map_tasks(
                    sleep_echo_task, make_tasks(payloads), executor=backend,
                    on_error="skip", timeout=0.75,
                )
        finally:
            backend.close()
        assert out[0] == {"v": 0}
        assert out[2] == {"v": 2}
        assert is_failure(out[1]) and out[1].kind == "timeout"

    def test_chaos_worker_lost_reissues_and_matches_serial(self, tmp_path):
        """A worker hard-killed *while holding a lease* (the chaos
        ``worker-lost`` fault) must not lose the task or change bytes:
        the dispatcher re-issues it to a surviving worker."""
        tasks = make_tasks(range(5), root_seed=13)
        expected = map_tasks(_double, tasks, executor="serial", stage="clean")
        chaos.install(
            ChaosPlan(
                state_dir=str(tmp_path / "chaos"),
                faults=(Fault(kind="worker-lost", stage="wl", index=2),),
            )
        )
        backend = DispatchBackend(
            tmp_path / "runs", local_workers=2, lease_timeout=0.8, poll=0.02
        )
        try:
            with pytest.warns(UserWarning, match="stopped heartbeating"):
                out = map_tasks(_double, tasks, executor=backend, stage="wl")
        finally:
            backend.close()
            chaos.uninstall()
        assert out == expected

    def test_sigkilled_external_worker_task_reissued(self, tmp_path):
        """The literal multi-host failure: SIGKILL an external worker
        mid-task.  Its lease goes stale, the dispatcher re-issues, and a
        second worker finishes the sweep with identical results."""
        root = tmp_path / "runs"
        first = _spawn_worker(root, "victim")
        second_started = threading.Event()

        def kill_first_then_start_second():
            # Wait until the victim holds the lease of the slow task.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                leases = list(root.glob("queues/*/leases/lease-*.json"))
                held = [
                    doc for doc in (json.loads(p.read_text()) for p in leases
                                    if p.exists())
                    if doc.get("worker") == "victim"
                ]
                if held:
                    break
                time.sleep(0.02)
            os.kill(first.pid, signal.SIGKILL)
            kill_first_then_start_second.worker = _spawn_worker(root, "rescuer")
            second_started.set()

        killer = threading.Thread(target=kill_first_then_start_second)
        killer.start()
        backend = DispatchBackend(root, lease_timeout=1.0, poll=0.02)
        payloads = [{"v": 0, "sleep": 1.5}, {"v": 1, "sleep": 1.5},
                    {"v": 2}, {"v": 3}]
        try:
            out = map_tasks(
                sleep_echo_task, make_tasks(payloads), executor=backend,
                stage="killed",
            )
        finally:
            backend.close()
            killer.join(timeout=30)
            first.wait(timeout=10)
            if second_started.is_set():
                rescuer = kill_first_then_start_second.worker
                rescuer.terminate()
                rescuer.wait(timeout=10)
        assert out == payloads
