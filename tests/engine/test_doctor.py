"""``repro doctor`` — offline audit and repair of a runs root.

Each test stages one species of post-incident debris (torn record,
foreign-config record, dead lease, orphaned claim, never-finished run)
and asserts that :func:`repro.engine.doctor.diagnose` reports it, that
``--repair`` puts it right, and that the repaired state is one the
normal readers (``load_stage``, the dispatch claim loop) accept.
"""

import json
import os
import time

from repro.cli import main
from repro.engine.doctor import diagnose
from repro.engine.journal import RunJournal


def _make_run(root, run_id="run-a", stage="s1", count=3):
    """A healthy, complete run: journaled results plus status.json."""
    journal = RunJournal.create(root, run_id, {"seed": 1})
    for i in range(count):
        journal.record(stage, i, i * 10)
    journal.load_stage(stage, count)  # registers the stage's task count
    journal.write_status(
        {"complete": True, "experiments": [], "journal": journal.health()}
    )
    return journal


def _record_files(journal, stage="s1"):
    return sorted((journal.run_dir / "stages").rglob("task-*.json"))


def _kinds(report):
    return sorted(f["kind"] for f in report["findings"])


class TestRunAudit:
    def test_clean_root_is_clean(self, tmp_path):
        _make_run(tmp_path)
        report = diagnose(tmp_path)
        assert report["runs"] == 1
        assert report["findings"] == []
        assert report["repairs"] == 0 and report["unrepaired"] == 0

    def test_corrupt_record_found_then_quarantined(self, tmp_path):
        journal = _make_run(tmp_path)
        victim = _record_files(journal)[1]
        victim.write_bytes(victim.read_bytes()[: len(victim.read_bytes()) // 2])

        report = diagnose(tmp_path)
        assert _kinds(report) == ["corrupt-record"]
        assert report["unrepaired"] == 1

        repaired = diagnose(tmp_path, repair=True)
        assert repaired["repairs"] == 1
        assert not victim.exists()
        moved = journal.run_dir / "corrupt" / victim.relative_to(journal.run_dir)
        assert moved.is_file()  # evidence preserved for forensics
        # The journal reader now sees a simple gap — task 1 just re-runs.
        resumed = RunJournal.open(tmp_path, "run-a")
        assert resumed.load_stage("s1", 3) == {0: 0, 2: 20}
        assert diagnose(tmp_path)["findings"] == []

    def test_index_out_of_range_record(self, tmp_path):
        journal = _make_run(tmp_path, count=3)
        journal.record("s1", 7, 70)  # valid bytes, impossible index

        report = diagnose(tmp_path)
        assert _kinds(report) == ["index-out-of-range"]
        diagnose(tmp_path, repair=True)
        assert diagnose(tmp_path)["findings"] == []
        assert RunJournal.open(tmp_path, "run-a").load_stage("s1", 3) == {
            0: 0, 1: 10, 2: 20,
        }

    def test_incomplete_runs_reported_not_repaired(self, tmp_path):
        RunJournal.create(tmp_path, "never-finished", {})  # no status.json
        journal = RunJournal.create(tmp_path, "halted", {})
        journal.write_status({"complete": False, "journal": journal.health()})

        report = diagnose(tmp_path, repair=True)
        assert _kinds(report) == ["incomplete-run", "incomplete-run"]
        assert report["repairs"] == 0 and report["unrepaired"] == 2
        assert all("--resume" in f["detail"] for f in report["findings"])


class TestQueueAudit:
    def _make_queue(self, root, name="q1"):
        qdir = root / "queues" / name
        for sub in ("todo", "claimed", "leases"):
            (qdir / sub).mkdir(parents=True)
        return qdir

    def test_stale_lease_released(self, tmp_path):
        qdir = self._make_queue(tmp_path)
        lease = qdir / "leases" / "lease-000002.json"
        lease.write_text(json.dumps({"index": 2, "worker": "w0"}))
        old = time.time() - 3600
        os.utime(lease, (old, old))
        fresh = qdir / "leases" / "lease-000005.json"
        fresh.write_text(json.dumps({"index": 5, "worker": "w1"}))

        report = diagnose(tmp_path, stale_after=60.0)
        assert _kinds(report) == ["stale-lease"]
        diagnose(tmp_path, repair=True, stale_after=60.0)
        assert not lease.exists()
        assert fresh.exists()  # the live worker keeps its lease

    def test_orphaned_claim_returned_to_todo(self, tmp_path):
        qdir = self._make_queue(tmp_path)
        claim = qdir / "claimed" / "task-000004-a1.pkl"
        claim.write_bytes(b"payload")  # claimed, but no lease at all

        report = diagnose(tmp_path)
        assert _kinds(report) == ["orphaned-claim"]
        repaired = diagnose(tmp_path, repair=True)
        assert repaired["repairs"] == 1
        assert not claim.exists()
        assert (qdir / "todo" / "task-000004-a1.pkl").read_bytes() == b"payload"

    def test_stale_lease_plus_claim_both_repaired(self, tmp_path):
        qdir = self._make_queue(tmp_path)
        claim = qdir / "claimed" / "task-000001-a2.pkl"
        claim.write_bytes(b"unit")
        lease = qdir / "leases" / "lease-000001.json"
        lease.write_text(json.dumps({"index": 1, "worker": "w9"}))
        old = time.time() - 3600
        os.utime(lease, (old, old))

        report = diagnose(tmp_path, repair=True)
        assert _kinds(report) == ["orphaned-claim", "stale-lease"]
        assert report["repairs"] == 2
        assert not lease.exists() and not claim.exists()
        assert (qdir / "todo" / "task-000001-a2.pkl").is_file()


class TestDoctorCLI:
    def test_exit_codes_and_json_report(self, tmp_path, capsys):
        journal = _make_run(tmp_path)
        assert main(["doctor", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["runs"] == 1 and report["findings"] == []

        victim = _record_files(journal)[0]
        victim.write_text("not json at all")
        assert main(["doctor", str(tmp_path)]) == 1  # unrepaired findings
        capsys.readouterr()
        assert main(["doctor", str(tmp_path), "--repair"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["repairs"] == 1

    def test_missing_root_is_empty_report(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path / "nothing-here")]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["runs"] == 0 and report["queues"] == 0
