"""Randomized chaos schedules, plan-spec errors, and ENOSPC degradation.

The :class:`RandomSchedule` draws must be pure functions of
``(seed, stage, index)`` — the soak harness's byte-identity claim
silently becomes "usually identical" if a draw ever depends on process
state.  Plan-file typos must come back as one-line
:class:`ChaosSpecError` messages listing the valid vocabulary, and an
injected ENOSPC into any journal write must degrade the run (warn once,
count, continue) instead of failing it.
"""

import json
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.engine import chaos
from repro.engine.chaos import (
    FAULT_KINDS,
    FAULT_SITES,
    ChaosPlan,
    ChaosSpecError,
    Fault,
    RandomSchedule,
)
from repro.engine.executor import Task, make_tasks, map_tasks
from repro.engine.faults import RetryPolicy
from repro.engine.journal import RunJournal


@pytest.fixture(autouse=True)
def _clean_chaos():
    yield
    chaos.uninstall()


def _double(task: Task) -> int:
    return task.payload * 2


class TestRandomSchedule:
    def test_draws_are_pure_functions_of_seed(self):
        a = RandomSchedule(seed=11, p_raise=0.3, p_hang=0.2, p_enospc=0.4)
        b = RandomSchedule(seed=11, p_raise=0.3, p_hang=0.2, p_enospc=0.4)
        draws_a = [(a.task_fault("s", i), a.write_fault("s", i)) for i in range(200)]
        draws_b = [(b.task_fault("s", i), b.write_fault("s", i)) for i in range(200)]
        assert draws_a == draws_b
        # A different seed gives a genuinely different schedule.
        c = RandomSchedule(seed=12, p_raise=0.3, p_hang=0.2, p_enospc=0.4)
        assert draws_a != [
            (c.task_fault("s", i), c.write_fault("s", i)) for i in range(200)
        ]

    def test_draws_survive_process_boundaries(self):
        """The string-seeded draw must not depend on PYTHONHASHSEED —
        dispatch workers are separate processes with their own hash
        randomization."""
        code = (
            "from repro.engine.chaos import RandomSchedule\n"
            "s = RandomSchedule(seed=11, p_raise=0.3, p_hang=0.2)\n"
            "print([s.task_fault('s', i) for i in range(50)])\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        runs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": hash_seed},
            ).stdout
            for hash_seed in ("0", "1", "424242")
        }
        assert len(runs) == 1

    def test_cumulative_kinds_and_rates(self):
        sched = RandomSchedule(
            seed=3, p_raise=0.25, p_hang=0.25, p_worker_lost=0.25, p_exit=0.25
        )
        kinds = [sched.task_fault("s", i) for i in range(400)]
        assert None not in kinds  # probabilities sum to 1
        for kind in ("raise", "hang", "worker-lost", "exit"):
            assert 40 < kinds.count(kind) < 160  # roughly a quarter each

    def test_stage_filter(self):
        sched = RandomSchedule(seed=3, p_raise=1.0, stage="only-this")
        assert sched.task_fault("other", 0) is None
        assert sched.task_fault("only-this", 0) == "raise"

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            RandomSchedule(seed=1, p_raise=-0.1)
        with pytest.raises(ValueError, match="must not exceed 1"):
            RandomSchedule(seed=1, p_raise=0.6, p_exit=0.6)
        with pytest.raises(ValueError, match="p_enospc"):
            RandomSchedule(seed=1, p_enospc=1.5)

    def test_round_trips_through_plan_dict(self):
        sched = RandomSchedule(seed=9, p_raise=0.1, p_enospc=0.2)
        plan = ChaosPlan(state_dir="/tmp/x", schedule=sched)
        assert ChaosPlan.from_dict(plan.to_dict()).schedule == sched

    def test_scheduled_faults_recoverable_under_retry(self, tmp_path):
        """Every schedule fault is once-only, so on_error=retry lands on
        clean-run results — the invariant the soak harness asserts at
        scale."""
        chaos.install(ChaosPlan(
            state_dir=str(tmp_path / "state"),
            schedule=RandomSchedule(seed=5, p_raise=0.5),
        ))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            out = map_tasks(
                _double, make_tasks(range(12)), stage="sr", on_error="retry",
                retry=RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01),
            )
        assert out == [i * 2 for i in range(12)]


class TestSpecErrors:
    def _install(self, tmp_path, doc) -> ChaosSpecError:
        path = tmp_path / "plan.json"
        path.write_text(doc if isinstance(doc, str) else json.dumps(doc))
        with pytest.raises(ChaosSpecError) as err:
            chaos.install_from_file(path)
        return err.value

    def test_unknown_kind_lists_vocabulary(self, tmp_path):
        exc = self._install(
            tmp_path, {"state_dir": "x", "faults": [{"kind": "explode"}]}
        )
        for kind in FAULT_KINDS:
            assert kind in str(exc)
        for site in FAULT_SITES:
            assert site in str(exc)

    def test_unknown_field_named(self, tmp_path):
        exc = self._install(
            tmp_path,
            {"state_dir": "x", "faults": [{"kind": "raise", "stge": "s"}]},
        )
        assert "'stge'" in str(exc) and "valid fields" in str(exc)

    def test_bad_schedule_field(self, tmp_path):
        exc = self._install(
            tmp_path, {"state_dir": "x", "schedule": {"seed": 1, "p_rais": 0.5}}
        )
        assert "'p_rais'" in str(exc)

    def test_not_json(self, tmp_path):
        exc = self._install(tmp_path, "{not json")
        assert "not valid JSON" in str(exc)

    def test_missing_state_dir(self, tmp_path):
        exc = self._install(tmp_path, {"faults": []})
        assert "state_dir" in str(exc)

    def test_cli_surfaces_spec_error_as_exit_message(self, tmp_path, monkeypatch):
        from repro.cli import main

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"state_dir": "x", "faults": [{"kind": "ka-boom"}]}))
        monkeypatch.setenv(chaos.CHAOS_ENV, str(path))
        with pytest.raises(SystemExit) as err:
            main(["run", "E11"])
        message = str(err.value)
        assert "ka-boom" in message and "journal.record" in message


class TestEnospcDegradation:
    def test_journal_record_enospc_degrades_with_warning(self, tmp_path):
        chaos.install(ChaosPlan(
            state_dir=str(tmp_path / "state"),
            faults=(Fault(kind="enospc", site="journal.record", once=False),),
        ))
        journal = RunJournal.create(tmp_path / "runs", "r", {})
        with pytest.warns(UserWarning, match="no-space"):
            out = map_tasks(_double, make_tasks(range(4)), stage="e", journal=journal)
        assert out == [0, 2, 4, 6]  # results untouched by the full disk
        assert journal.degraded_writes == 4
        assert journal.health()["degraded_writes"] == 4
        # Nothing was checkpointed, so a resume re-runs everything...
        resumed = RunJournal.open(tmp_path / "runs", "r")
        assert resumed.load_stage("e", 4) == {}

    def test_status_write_enospc_absorbed(self, tmp_path):
        chaos.install(ChaosPlan(
            state_dir=str(tmp_path / "state"),
            faults=(Fault(kind="enospc", site="journal.status"),),
        ))
        journal = RunJournal.create(tmp_path / "runs", "r", {})
        with pytest.warns(UserWarning, match="status.json"):
            journal.write_status({"complete": True})
        assert journal.degraded_writes == 1
        assert not (journal.run_dir / "status.json").exists()
