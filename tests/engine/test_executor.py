"""Tests for the deterministic task executor."""

import numpy as np
import pytest

from repro.engine.executor import (
    JOBS_CAP,
    StageTimer,
    Task,
    get_worker_context,
    make_tasks,
    map_tasks,
    resolve_jobs,
)


def _draw(task: Task) -> float:
    """Pickleable task function: one uniform from the task's seed."""
    return float(np.random.default_rng(task.seed).random())


def _payload_square(task: Task) -> int:
    return task.payload**2


def _context_scaled(task: Task) -> int:
    """Pickleable task function reading the per-worker shared context."""
    ctx = get_worker_context()
    return ctx["factor"] * task.payload


class TestMakeTasks:
    def test_indices_and_payloads(self):
        tasks = make_tasks(["a", "b", "c"])
        assert [t.index for t in tasks] == [0, 1, 2]
        assert [t.payload for t in tasks] == ["a", "b", "c"]
        assert all(t.seed is None for t in tasks)

    def test_seeds_are_deterministic_and_distinct(self):
        one = make_tasks(range(4), root_seed=7, name="x")
        two = make_tasks(range(4), root_seed=7, name="x")
        draws_one = [_draw(t) for t in one]
        draws_two = [_draw(t) for t in two]
        assert draws_one == draws_two
        assert len(set(draws_one)) == 4

    def test_seeds_depend_on_name_and_root(self):
        base = [_draw(t) for t in make_tasks(range(3), root_seed=7, name="x")]
        other_name = [_draw(t) for t in make_tasks(range(3), root_seed=7, name="y")]
        other_root = [_draw(t) for t in make_tasks(range(3), root_seed=8, name="x")]
        assert base != other_name
        assert base != other_root


class TestMapTasks:
    def test_serial_preserves_order(self):
        tasks = make_tasks([3, 1, 2])
        assert map_tasks(_payload_square, tasks, jobs=1) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        tasks = make_tasks(range(5), root_seed=11)
        serial = map_tasks(_draw, tasks, jobs=1)
        parallel = map_tasks(_draw, tasks, jobs=3)
        assert serial == parallel

    def test_worker_exception_propagates(self):
        def boom(task: Task):
            raise ValueError("bad task %d" % task.index)

        with pytest.raises(ValueError, match="bad task"):
            map_tasks(boom, make_tasks(range(2)), jobs=1)

    def test_empty_tasks(self):
        assert map_tasks(_payload_square, [], jobs=4) == []


class TestWorkerContext:
    def test_serial_sees_context(self):
        tasks = make_tasks([1, 2, 3])
        out = map_tasks(_context_scaled, tasks, jobs=1, context={"factor": 10})
        assert out == [10, 20, 30]

    def test_pool_ships_context_once_per_worker(self):
        tasks = make_tasks([1, 2, 3, 4])
        out = map_tasks(_context_scaled, tasks, jobs=2, context={"factor": 5})
        assert out == [5, 10, 15, 20]

    def test_serial_and_pool_agree(self):
        tasks = make_tasks(range(6))
        ctx = {"factor": 3}
        serial = map_tasks(_context_scaled, tasks, jobs=1, context=ctx)
        pooled = map_tasks(_context_scaled, tasks, jobs=3, context=ctx)
        assert serial == pooled

    def test_context_cleared_after_serial_run(self):
        map_tasks(_context_scaled, make_tasks([1]), jobs=1, context={"factor": 2})
        assert get_worker_context() is None

    def test_no_context_reads_none(self):
        def probe(task: Task):
            return get_worker_context()

        assert map_tasks(probe, make_tasks([0]), jobs=1) == [None]


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(8) == 8

    def test_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_absurd_values_hit_the_sanity_cap(self):
        # Regression: a fat-fingered --jobs 10000 must be a clear error,
        # not a fork bomb.
        assert resolve_jobs(JOBS_CAP) == JOBS_CAP
        with pytest.raises(ValueError, match="sanity cap"):
            resolve_jobs(JOBS_CAP + 1)
        with pytest.raises(ValueError, match="sanity cap"):
            resolve_jobs(10_000_000)


class TestStageTimer:
    def test_accumulates_named_stages(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            pass
        assert set(timer.timings) == {"a", "b"}
        assert all(v >= 0.0 for v in timer.timings.values())
