"""Execution-backend protocol tests.

Backend selection (``executor=`` argument, ambient policy, ``auto``
fallback), and the core invariant of the refactor: serial, pool, and
dispatch execution produce identical results, retries, and metrics for
the same task list — including when attempt 1 times out or crashes and
attempt 2 succeeds.
"""

import os

import numpy as np
import pytest

from repro.engine import chaos
from repro.engine.backends import (
    DispatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_executor,
)
from repro.engine.chaos import ChaosPlan, Fault
from repro.engine.executor import Task, make_tasks, map_tasks
from repro.engine.faults import (
    ExecutionPolicy,
    RetryPolicy,
    execution_scope,
)
from repro.obs import metrics as obs_metrics

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    chaos.uninstall()
    obs_metrics.install(None)
    obs_metrics.set_collection(False)


def _draw(task: Task) -> float:
    """Pickleable task function: one uniform from the task's seed."""
    return float(np.random.default_rng(task.seed).random())


def _pid(task: Task) -> int:
    return os.getpid()


class TestResolveExecutor:
    def test_mode_strings(self):
        assert isinstance(resolve_executor("serial", 8, 8), SerialBackend)
        assert isinstance(resolve_executor("pool", 1, 1), ProcessPoolBackend)
        assert isinstance(resolve_executor("dispatch", 1, 1), DispatchBackend)

    def test_auto_keeps_the_historical_choice(self):
        assert isinstance(resolve_executor("auto", 1, 8), SerialBackend)
        assert isinstance(resolve_executor("auto", 4, 1), SerialBackend)
        assert isinstance(resolve_executor("auto", 4, 8), ProcessPoolBackend)
        assert isinstance(resolve_executor(None, 4, 8), ProcessPoolBackend)

    def test_backend_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_executor(backend, 4, 8) is backend

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            resolve_executor("threads", 1, 1)

    def test_non_backend_object_rejected(self):
        with pytest.raises(TypeError, match="ExecutionBackend"):
            resolve_executor(object(), 1, 1)


class TestExecutorSelection:
    def test_serial_stays_in_process_despite_jobs(self):
        pids = map_tasks(_pid, make_tasks(range(4)), jobs=4, executor="serial")
        assert pids == [os.getpid()] * 4

    def test_pool_forces_worker_processes(self):
        pids = map_tasks(_pid, make_tasks(range(4)), jobs=2, executor="pool")
        assert os.getpid() not in pids

    def test_ambient_policy_supplies_executor(self):
        with execution_scope(ExecutionPolicy(executor="serial")):
            pids = map_tasks(_pid, make_tasks(range(4)), jobs=4)
        assert pids == [os.getpid()] * 4

    def test_explicit_argument_overrides_ambient_policy(self):
        with execution_scope(ExecutionPolicy(executor="serial")):
            pids = map_tasks(_pid, make_tasks(range(4)), jobs=2, executor="pool")
        assert os.getpid() not in pids

    def test_policy_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="executor"):
            ExecutionPolicy(executor="threads")

    def test_policy_accepts_backend_instance(self):
        assert isinstance(
            ExecutionPolicy(executor=SerialBackend()).executor, SerialBackend
        )


def _dispatch_backend(tmp_path) -> DispatchBackend:
    return DispatchBackend(
        tmp_path / "runs", local_workers=2, lease_timeout=5.0, poll=0.02
    )


class TestCrossBackendParity:
    def test_identical_draws_on_all_three_backends(self, tmp_path):
        tasks = make_tasks(range(8), root_seed=11)
        serial = map_tasks(_draw, tasks, executor="serial")
        pooled = map_tasks(_draw, tasks, jobs=4, executor="pool")
        backend = _dispatch_backend(tmp_path)
        try:
            dispatched = map_tasks(_draw, tasks, executor=backend)
        finally:
            backend.close()
        assert serial == pooled == dispatched

    def test_transient_crash_retry_parity(self, tmp_path):
        """Attempt 1 of task 2 raises, attempt 2 succeeds: every backend
        must land the same values and count exactly one retry."""
        tasks = make_tasks(range(5), root_seed=3)
        expected = map_tasks(_draw, tasks, executor="serial", stage="clean")

        def leg(executor, state_dir, **kwargs):
            chaos.install(
                ChaosPlan(
                    state_dir=str(tmp_path / state_dir),
                    faults=(Fault(kind="raise", stage="flaky", index=2),),
                )
            )
            registry = obs_metrics.MetricsRegistry()
            obs_metrics.install(registry)
            try:
                out = map_tasks(
                    _draw, tasks, executor=executor, stage="flaky",
                    on_error="retry", retry=FAST_RETRY, **kwargs,
                )
            finally:
                obs_metrics.install(None)
                chaos.uninstall()
            return out, registry.counters

        # One chaos state dir per leg: the once-only marker must fire fresh.
        serial_out, serial_counters = leg("serial", "cs-serial")
        pool_out, pool_counters = leg("pool", "cs-pool", jobs=2)
        backend = _dispatch_backend(tmp_path)
        try:
            disp_out, disp_counters = leg(backend, "cs-dispatch")
        finally:
            backend.close()

        assert serial_out == pool_out == disp_out == expected
        for counters in (serial_counters, pool_counters, disp_counters):
            assert counters["executor.retries"] == 1
            assert "executor.task_failures" not in counters

    def test_timeout_then_success_parity_pool_vs_dispatch(self, tmp_path):
        """S3: attempt 1 of task 1 hangs past the wall-clock budget,
        attempt 2 succeeds.  The pool and dispatch backends must produce
        the result envelope of an undisturbed serial run and identical
        retry/timeout counters.  (The serial backend cannot preempt a
        running task and documents that it ignores ``timeout``, so it
        has no timeout leg to compare.)"""
        tasks = make_tasks(range(4), root_seed=5)
        expected = map_tasks(_draw, tasks, executor="serial", stage="clean")

        def leg(executor, state_dir, **kwargs):
            chaos.install(
                ChaosPlan(
                    state_dir=str(tmp_path / state_dir),
                    faults=(
                        Fault(kind="hang", stage="hung", index=1, hang_seconds=30.0),
                    ),
                )
            )
            registry = obs_metrics.MetricsRegistry()
            obs_metrics.install(registry)
            try:
                out = map_tasks(
                    _draw, tasks, executor=executor, stage="hung",
                    on_error="retry", retry=FAST_RETRY, timeout=0.75, **kwargs,
                )
            finally:
                obs_metrics.install(None)
                chaos.uninstall()
            return out, registry.counters

        pool_out, pool_counters = leg("pool", "cs-pool", jobs=2)
        backend = DispatchBackend(
            tmp_path / "runs", local_workers=2, lease_timeout=10.0, poll=0.02
        )
        try:
            disp_out, disp_counters = leg(backend, "cs-dispatch")
        finally:
            backend.close()

        assert pool_out == disp_out == expected
        for counters in (pool_counters, disp_counters):
            assert counters["executor.retries"] == 1
            assert counters["executor.events.timeout"] == 1
            assert "executor.task_failures" not in counters
