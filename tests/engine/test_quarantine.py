"""Poison-task quarantine: a task that kills its worker on every attempt
must stop being re-issued after ``quarantine_after`` fatal attempts and
settle as ``TaskFailure(kind="quarantined")`` — on the pool backend's
rebuild loop and on the dispatch backend's re-issue loop — while the
rest of the sweep completes with correct bytes.
"""

import json

import pytest

from repro.engine import chaos
from repro.engine.backends import DispatchBackend
from repro.engine.chaos import ChaosPlan, Fault
from repro.engine.executor import Task, make_tasks, map_tasks
from repro.engine.faults import (
    ExecutionPolicy,
    RetryPolicy,
    completed,
    is_failure,
)
from repro.engine.journal import RunJournal

FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.001, max_delay=0.01)


@pytest.fixture(autouse=True)
def _clean_chaos():
    yield
    chaos.uninstall()


def _install_persistent_kill(tmp_path, stage: str, index: int) -> ChaosPlan:
    """A task that dies hard on EVERY attempt (once=False) — the poison
    shape quarantine exists for."""
    plan = ChaosPlan(
        state_dir=str(tmp_path / "chaos-state"),
        faults=(Fault(kind="worker-lost", stage=stage, index=index, once=False),),
    )
    chaos.install(plan)
    return plan


def _double(task: Task) -> int:
    return task.payload * 2


class TestPolicyKnob:
    def test_policy_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            ExecutionPolicy(quarantine_after=0)

    def test_map_tasks_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            map_tasks(_double, make_tasks([1]), quarantine_after=0)

    def test_cli_flag_feeds_policy(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "E1", "--quarantine-after", "7"])
        assert args.quarantine_after == 7


class TestPoolQuarantine:
    def test_persistent_killer_quarantined_sweep_completes(self, tmp_path):
        _install_persistent_kill(tmp_path, "pq", 2)
        with pytest.warns(UserWarning, match="quarantine"):
            out = map_tasks(
                _double, make_tasks(range(5)), jobs=2, executor="pool",
                stage="pq", on_error="retry", retry=FAST_RETRY,
                quarantine_after=2,
            )
        assert [is_failure(r) for r in out] == [False, False, True, False, False]
        assert out[2].kind == "quarantined"
        assert out[2].attempts >= 2
        assert completed(out) == [0, 2, 6, 8]

    def test_crash_counts_persist_for_resume(self, tmp_path):
        """A second incarnation of the run pre-quarantines the poison
        task from the journal's crash counts instead of re-proving it."""
        _install_persistent_kill(tmp_path, "persist", 1)
        journal = RunJournal.create(tmp_path / "runs", "r1", {})
        with pytest.warns(UserWarning, match="quarantine"):
            map_tasks(
                _double, make_tasks(range(3)), jobs=2, executor="pool",
                stage="persist", on_error="retry", retry=FAST_RETRY,
                journal=journal, quarantine_after=2,
            )
        assert journal.crash_counts("persist")[1] >= 2

        chaos.uninstall()  # even with chaos gone, the record stands
        resumed = RunJournal.open(tmp_path / "runs", "r1")
        with pytest.warns(UserWarning, match="quarantine"):
            out = map_tasks(
                _double, make_tasks(range(3)), jobs=2, executor="pool",
                stage="persist", on_error="retry", retry=FAST_RETRY,
                journal=resumed, quarantine_after=2,
            )
        assert is_failure(out[1]) and out[1].kind == "quarantined"
        assert completed(out) == [0, 4]

    def test_transient_death_still_recovers(self, tmp_path):
        """A once-only death stays below the quarantine budget and the
        task completes on the rebuilt pool — no behaviour change."""
        plan = ChaosPlan(
            state_dir=str(tmp_path / "chaos-state"),
            faults=(Fault(kind="worker-lost", stage="tq", index=1),),
        )
        chaos.install(plan)
        with pytest.warns(UserWarning, match="pool-broken"):
            out = map_tasks(
                _double, make_tasks(range(4)), jobs=2, executor="pool",
                stage="tq", on_error="retry", retry=FAST_RETRY,
                quarantine_after=3,
            )
        assert out == [0, 2, 4, 6]


class TestDispatchQuarantine:
    def test_persistent_killer_quarantined_sweep_completes(self, tmp_path):
        _install_persistent_kill(tmp_path, "dq", 1)
        backend = DispatchBackend(
            tmp_path / "runs", local_workers=2, lease_timeout=0.6, poll=0.02
        )
        journal = RunJournal.create(tmp_path / "journals", "dq1", {})
        try:
            with pytest.warns(UserWarning, match="quarantine"):
                out = map_tasks(
                    _double, make_tasks(range(4)), executor=backend,
                    stage="dq", on_error="retry", retry=FAST_RETRY,
                    journal=journal, quarantine_after=2,
                )
        finally:
            backend.close()
        assert [is_failure(r) for r in out] == [False, True, False, False]
        assert out[1].kind == "quarantined"
        assert completed(out) == [0, 4, 6]
        # ... and the failure is on disk for the post-mortem.
        lines = [
            json.loads(line)
            for line in (tmp_path / "journals" / "dq1" / "failures.jsonl")
            .read_text()
            .splitlines()
        ]
        assert any(d["kind"] == "quarantined" and d["index"] == 1 for d in lines)
        assert journal.crash_counts("dq")[1] >= 2

    def test_quarantine_raises_under_raise_mode(self, tmp_path):
        _install_persistent_kill(tmp_path, "dr", 0)
        backend = DispatchBackend(
            tmp_path / "runs", local_workers=2, lease_timeout=0.6, poll=0.02
        )
        try:
            with pytest.warns(UserWarning, match="worker-lost"):
                with pytest.raises(RuntimeError, match="quarantined"):
                    map_tasks(
                        _double, make_tasks(range(2)), executor=backend,
                        stage="dr", on_error="raise", quarantine_after=2,
                    )
        finally:
            backend.close()
