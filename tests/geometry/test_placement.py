"""Tests for network-topology generators."""

import numpy as np
import pytest

from repro.geometry.placement import (
    cluster_network,
    grid_network,
    line_network,
    nested_pairs_network,
    paper_random_network,
    poisson_network,
)


class TestPaperRandomNetwork:
    def test_shapes(self):
        s, r = paper_random_network(50, rng=0)
        assert s.shape == (50, 2) and r.shape == (50, 2)

    def test_receivers_in_square(self):
        _, r = paper_random_network(200, area=1000.0, rng=1)
        assert np.all(r >= 0.0) and np.all(r <= 1000.0)

    def test_link_lengths_in_interval(self):
        s, r = paper_random_network(500, min_length=20.0, max_length=40.0, rng=2)
        lengths = np.linalg.norm(s - r, axis=1)
        assert lengths.min() >= 20.0 - 1e-9
        assert lengths.max() <= 40.0 + 1e-9

    def test_lengths_roughly_uniform(self):
        """The paper draws the radius uniformly; the mean must be ~(lo+hi)/2."""
        s, r = paper_random_network(5000, min_length=20.0, max_length=40.0, rng=3)
        lengths = np.linalg.norm(s - r, axis=1)
        assert abs(lengths.mean() - 30.0) < 0.5

    def test_angles_roughly_uniform(self):
        s, r = paper_random_network(5000, rng=4)
        offsets = s - r
        angles = np.arctan2(offsets[:, 1], offsets[:, 0])
        # Mean direction vector of uniform angles should be near zero.
        assert np.linalg.norm([np.cos(angles).mean(), np.sin(angles).mean()]) < 0.05

    def test_reproducible(self):
        a = paper_random_network(10, rng=7)
        b = paper_random_network(10, rng=7)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    @pytest.mark.parametrize("kwargs", [
        {"n": 0},
        {"n": -3},
        {"n": 5, "area": 0.0},
        {"n": 5, "min_length": -1.0},
        {"n": 5, "min_length": 10.0, "max_length": 5.0},
    ])
    def test_invalid_args(self, kwargs):
        n = kwargs.pop("n")
        with pytest.raises(ValueError):
            paper_random_network(n, **kwargs)


class TestGridNetwork:
    def test_receiver_positions(self):
        s, r = grid_network(2, 3, spacing=10.0, link_length=1.0, rng=0)
        assert r.shape == (6, 2)
        assert {tuple(p) for p in r} == {
            (0.0, 0.0), (10.0, 0.0), (20.0, 0.0),
            (0.0, 10.0), (10.0, 10.0), (20.0, 10.0),
        }

    def test_fixed_link_length(self):
        s, r = grid_network(3, 3, link_length=5.0, rng=1)
        np.testing.assert_allclose(np.linalg.norm(s - r, axis=1), 5.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_network(0, 3)
        with pytest.raises(ValueError):
            grid_network(2, 2, spacing=-1.0)


class TestPoissonNetwork:
    def test_mean_count(self):
        counts = [
            paper_like_count for paper_like_count in (
                poisson_network(30 / 1e6, area=1000.0, rng=k)[0].shape[0]
                for k in range(40)
            )
        ]
        assert 15 < np.mean(counts) < 50  # intensity*area^2 = 30

    def test_never_empty(self):
        s, r = poisson_network(1e-12, area=10.0, rng=0)
        assert s.shape[0] >= 1

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            poisson_network(0.0)


class TestClusterNetwork:
    def test_shapes(self):
        s, r = cluster_network(4, 5, rng=0)
        assert s.shape == (20, 2) and r.shape == (20, 2)

    def test_clustering_tighter_than_uniform(self):
        s, r = cluster_network(3, 30, area=1000.0, cluster_radius=10.0, rng=1)
        # Mean nearest-neighbour distance among receivers must be far below
        # the uniform expectation (~0.5/sqrt(n/area^2) ≈ 52 for n=90).
        from scipy.spatial import cKDTree

        d, _ = cKDTree(r).query(r, k=2)
        assert d[:, 1].mean() < 20.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            cluster_network(0, 5)


class TestLineNetwork:
    def test_deterministic_layout(self):
        s, r = line_network(3, spacing=10.0, link_length=2.0)
        np.testing.assert_allclose(r[:, 0], [0.0, 10.0, 20.0])
        np.testing.assert_allclose(s[:, 0], [2.0, 12.0, 22.0])
        np.testing.assert_allclose(s[:, 1], 0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            line_network(0)


class TestNestedPairsNetwork:
    def test_lengths_grow_geometrically(self):
        s, r = nested_pairs_network(6, base_length=1.0, growth=2.0)
        lengths = np.linalg.norm(s - r, axis=1)
        ratios = lengths[1:] / lengths[:-1]
        np.testing.assert_allclose(ratios, 2.0, rtol=1e-3)

    def test_delta_is_growth_power(self):
        s, r = nested_pairs_network(5, base_length=1.0, growth=3.0)
        lengths = np.linalg.norm(s - r, axis=1)
        assert lengths.max() / lengths.min() == pytest.approx(3.0**4, rel=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            nested_pairs_network(3, growth=1.0)
        with pytest.raises(ValueError):
            nested_pairs_network(3, base_length=0.0)
