"""Tests for the torus metric."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.network import Network
from repro.geometry.metric import TorusMetric

SIZE = 100.0

torus_points = arrays(
    np.float64,
    (4, 2),
    elements=st.floats(min_value=0.0, max_value=SIZE - 1e-9, allow_nan=False),
)


class TestWrapAround:
    def test_short_way_around(self):
        m = TorusMetric(SIZE)
        # 99 -> 1 is distance 2 around the seam, not 98.
        assert m.distance([99.0, 0.0], [1.0, 0.0]) == pytest.approx(2.0)

    def test_interior_matches_euclidean(self):
        m = TorusMetric(SIZE)
        assert m.distance([10.0, 10.0], [13.0, 14.0]) == pytest.approx(5.0)

    def test_max_distance_is_half_size_diagonal(self):
        m = TorusMetric(SIZE)
        # No two points can be farther than the half-size diagonal.
        gen = np.random.default_rng(0)
        pts = gen.uniform(0, SIZE, (50, 2))
        d = m.pairwise(pts, pts)
        assert d.max() <= np.sqrt(2) * SIZE / 2 + 1e-9

    def test_coordinates_mod_size(self):
        """Points outside [0, size) wrap consistently."""
        m = TorusMetric(SIZE)
        assert m.distance([105.0, 0.0], [5.0, 0.0]) == pytest.approx(0.0)

    def test_rowwise_matches_pairwise(self):
        m = TorusMetric(SIZE)
        gen = np.random.default_rng(1)
        a = gen.uniform(0, SIZE, (6, 2))
        b = gen.uniform(0, SIZE, (6, 2))
        np.testing.assert_allclose(m.lengths(a, b), np.diagonal(m.pairwise(a, b)))

    @given(pts=torus_points)
    def test_metric_axioms(self, pts):
        m = TorusMetric(SIZE)
        d = m.pairwise(pts, pts)
        np.testing.assert_allclose(d, d.T, atol=1e-9)
        np.testing.assert_allclose(np.diagonal(d), 0.0, atol=1e-9)
        lhs = d[:, None, :]
        rhs = d[:, :, None] + d[None, :, :]
        assert np.all(lhs <= rhs + 1e-6 * (1.0 + rhs))

    def test_p1_torus(self):
        m = TorusMetric(SIZE, p=1.0)
        assert m.distance([99.0, 99.0], [1.0, 1.0]) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusMetric(0.0)
        with pytest.raises(ValueError):
            TorusMetric(-5.0)


class TestTorusNetworks:
    def test_boundary_free_interference(self):
        """On the torus, a translated copy of a network has identical
        cross-distances — the translation invariance that removes
        boundary effects."""
        gen = np.random.default_rng(2)
        senders = gen.uniform(0, SIZE, (10, 2))
        receivers = senders + gen.uniform(-3, 3, (10, 2))
        m = TorusMetric(SIZE)
        net = Network(senders % SIZE, receivers % SIZE, metric=m)
        shift = np.array([37.0, 61.0])
        net2 = Network((senders + shift) % SIZE, (receivers + shift) % SIZE, metric=m)
        np.testing.assert_allclose(
            net.cross_distances, net2.cross_distances, rtol=1e-9
        )
