"""Tests for the metric abstraction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.metric import EuclideanMetric, PNormMetric

finite_points = arrays(
    np.float64,
    (4, 2),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestEuclidean:
    def test_known_distance(self):
        m = EuclideanMetric()
        assert m.distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_pairwise_shape_and_values(self):
        m = EuclideanMetric()
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 1.0], [2.0, 0.0]])
        d = m.pairwise(a, b)
        assert d.shape == (2, 3)
        assert d[0, 0] == pytest.approx(1.0)
        assert d[1, 2] == pytest.approx(1.0)
        assert d[0, 2] == pytest.approx(2.0)

    def test_rowwise_matches_pairwise_diagonal(self):
        gen = np.random.default_rng(0)
        a = gen.normal(size=(5, 3))
        b = gen.normal(size=(5, 3))
        m = EuclideanMetric()
        np.testing.assert_allclose(m.lengths(a, b), np.diagonal(m.pairwise(a, b)))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EuclideanMetric().pairwise(np.ones((2, 2)), np.ones((2, 3)))
        with pytest.raises(ValueError):
            EuclideanMetric().lengths(np.ones((2, 2)), np.ones((3, 2)))


class TestPNorm:
    @pytest.mark.parametrize("p,expected", [(1.0, 7.0), (2.0, 5.0), (np.inf, 4.0)])
    def test_norms(self, p, expected):
        m = PNormMetric(p)
        assert m.distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(expected)

    def test_fractional_p_rejected(self):
        with pytest.raises(ValueError):
            PNormMetric(0.5)
        with pytest.raises(ValueError):
            PNormMetric(float("nan"))

    def test_general_p(self):
        m = PNormMetric(3.0)
        assert m.distance([0.0], [2.0]) == pytest.approx(2.0)
        assert m.distance([0.0, 0.0], [1.0, 1.0]) == pytest.approx(2 ** (1 / 3))

    @pytest.mark.parametrize("p", [1.0, 1.5, 2.0, 3.0, np.inf])
    @given(pts=finite_points)
    def test_metric_axioms(self, pts, p):
        m = PNormMetric(p)
        d = m.pairwise(pts, pts)
        # Symmetry and zero diagonal.
        np.testing.assert_allclose(d, d.T, atol=1e-9)
        np.testing.assert_allclose(np.diagonal(d), 0.0, atol=1e-12)
        assert np.all(d >= 0.0)
        # Triangle inequality over all index triples.
        lhs = d[:, None, :]  # d(i, k)
        rhs = d[:, :, None] + d[None, :, :]  # d(i, j) + d(j, k)
        assert np.all(lhs <= rhs + 1e-6 * (1.0 + rhs))

    def test_ordering_of_pnorms(self):
        """For the same points, higher p gives smaller (or equal) distance."""
        a, b = np.array([[0.0, 0.0]]), np.array([[1.0, 2.0]])
        d1 = PNormMetric(1.0).pairwise(a, b)[0, 0]
        d2 = PNormMetric(2.0).pairwise(a, b)[0, 0]
        dinf = PNormMetric(np.inf).pairwise(a, b)[0, 0]
        assert d1 >= d2 >= dinf

    def test_repr(self):
        assert "2.0" in repr(PNormMetric(2.0))
        assert repr(EuclideanMetric()) == "EuclideanMetric()"
