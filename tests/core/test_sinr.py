"""Tests for the non-fading SINR engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import (
    SINRInstance,
    mean_signal_matrix,
    sinr_nonfading,
    sinr_nonfading_batch,
    success_count,
    successful_links,
)
from repro.geometry.placement import line_network, paper_random_network


class TestMeanSignalMatrix:
    def test_formula(self):
        s, r = line_network(2, spacing=10.0, link_length=2.0)
        net = Network(s, r)
        G = mean_signal_matrix(net, UniformPower(3.0), alpha=2.0)
        D = net.cross_distances
        np.testing.assert_allclose(G, 3.0 / D**2.0)

    def test_row_is_sender(self):
        """G[j, i] must use p_j, not p_i."""
        s, r = line_network(2, spacing=10.0, link_length=2.0)
        net = Network(s, r)

        from repro.core.power import CustomPower

        G = mean_signal_matrix(net, CustomPower([1.0, 100.0]), alpha=2.0)
        assert G[1, 0] / G[0, 1] == pytest.approx(
            100.0 * net.cross_distances[0, 1] ** 2 / net.cross_distances[1, 0] ** 2
        )

    def test_invalid_alpha(self):
        s, r = line_network(2)
        with pytest.raises(ValueError):
            mean_signal_matrix(Network(s, r), UniformPower(1.0), alpha=0.0)


class TestSinrNonfading:
    def test_hand_computed(self, two_link_instance):
        sinr = two_link_instance.sinr([True, True])
        assert sinr[0] == pytest.approx(4.0 / 2.5)
        assert sinr[1] == pytest.approx(8.0 / 1.5)

    def test_single_link_vs_noise(self, two_link_instance):
        sinr = two_link_instance.sinr([True, False])
        assert sinr[0] == pytest.approx(4.0 / 0.5)
        assert sinr[1] == 0.0

    def test_silent_links_zero(self, two_link_instance):
        assert two_link_instance.sinr([False, False]).tolist() == [0.0, 0.0]

    def test_zero_noise_isolated_is_inf(self):
        inst = SINRInstance(np.array([[5.0, 0.0], [0.0, 5.0]]), noise=0.0)
        sinr = inst.sinr([True, False])
        assert np.isinf(sinr[0])

    def test_index_list_accepted(self, two_link_instance):
        a = two_link_instance.sinr(np.array([1]))
        b = two_link_instance.sinr([False, True])
        np.testing.assert_allclose(a, b)

    def test_interference_monotone(self, paper_instance):
        """Adding an interferer can only lower each active link's SINR."""
        base = paper_instance.sinr([True] + [False] * (paper_instance.n - 1))
        more = paper_instance.sinr([True, True] + [False] * (paper_instance.n - 2))
        assert more[0] <= base[0]


class TestBatchConsistency:
    def test_batch_matches_single(self, paper_instance):
        gen = np.random.default_rng(0)
        patterns = gen.random((16, paper_instance.n)) < 0.4
        batch = paper_instance.sinr_batch(patterns)
        for t in range(16):
            np.testing.assert_allclose(batch[t], paper_instance.sinr(patterns[t]))

    def test_shape_validation(self, paper_instance):
        with pytest.raises(ValueError):
            paper_instance.sinr_batch(np.zeros((4, paper_instance.n + 1), dtype=bool))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_batch_random_instances(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 12))
        gains = gen.uniform(0.01, 5.0, (n, n))
        inst = SINRInstance(gains, noise=float(gen.uniform(0, 1)))
        patterns = gen.random((8, n)) < 0.5
        batch = inst.sinr_batch(patterns)
        for t in range(8):
            np.testing.assert_allclose(batch[t], inst.sinr(patterns[t]))


class TestSuccess:
    def test_threshold(self, two_link_instance):
        # SINRs are 1.6 and 5.33 with both active.
        assert successful_links(
            two_link_instance.gains, [True, True], 0.5, beta=2.0
        ).tolist() == [False, True]
        assert success_count(two_link_instance.gains, [True, True], 0.5, 1.5) == 2

    def test_is_feasible(self, two_link_instance):
        assert two_link_instance.is_feasible([0, 1], beta=1.5)
        assert not two_link_instance.is_feasible([0, 1], beta=2.0)
        assert two_link_instance.is_feasible([1], beta=2.0)
        assert two_link_instance.is_feasible([], beta=2.0)

    def test_invalid_beta(self, two_link_instance):
        with pytest.raises(ValueError):
            two_link_instance.successes([True, True], beta=0.0)


class TestSINRInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            SINRInstance(np.array([[0.0, 1.0], [1.0, 1.0]]))  # zero diagonal
        with pytest.raises(ValueError):
            SINRInstance(np.array([[1.0, -1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            SINRInstance(np.ones((2, 3)))
        with pytest.raises(ValueError):
            SINRInstance(np.eye(2), noise=-1.0)

    def test_signal_and_noise(self, two_link_instance):
        np.testing.assert_allclose(two_link_instance.signal, [4.0, 8.0])
        assert two_link_instance.noise == 0.5
        np.testing.assert_allclose(
            two_link_instance.max_noise_free_sinr, [8.0, 16.0]
        )

    def test_max_noise_free_sinr_zero_noise(self):
        inst = SINRInstance(np.eye(2) + 0.1, noise=0.0)
        assert np.all(np.isinf(inst.max_noise_free_sinr))

    def test_subinstance(self, three_link_instance):
        sub = three_link_instance.subinstance([2, 0])
        np.testing.assert_allclose(
            sub.gains, three_link_instance.gains[np.ix_([2, 0], [2, 0])]
        )
        assert sub.noise == three_link_instance.noise

    def test_with_noise(self, two_link_instance):
        alt = two_link_instance.with_noise(2.0)
        assert alt.noise == 2.0
        np.testing.assert_allclose(alt.gains, two_link_instance.gains)

    def test_gains_read_only(self, two_link_instance):
        with pytest.raises(ValueError):
            two_link_instance.gains[0, 0] = 9.0

    def test_from_network_matches_manual(self, paper_network):
        inst = SINRInstance.from_network(paper_network, UniformPower(2.0), 2.2, 1e-6)
        manual = mean_signal_matrix(paper_network, UniformPower(2.0), 2.2)
        np.testing.assert_allclose(inst.gains, manual)
        assert inst.noise == 1e-6
