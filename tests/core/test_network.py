"""Tests for the Network container."""

import numpy as np
import pytest

from repro.core.network import Network
from repro.geometry.metric import PNormMetric
from repro.geometry.placement import line_network, paper_random_network


class TestConstruction:
    def test_basic(self):
        s, r = paper_random_network(10, rng=0)
        net = Network(s, r)
        assert net.n == 10 and len(net) == 10
        assert net.is_geometric

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Network(np.ones((3, 2)), np.ones((4, 2)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            Network(np.ones(3), np.ones(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Network(np.ones((0, 2)), np.ones((0, 2)))

    def test_arrays_read_only(self):
        s, r = paper_random_network(5, rng=1)
        net = Network(s, r)
        with pytest.raises(ValueError):
            net.senders[0, 0] = 99.0
        with pytest.raises(ValueError):
            net.cross_distances[0, 0] = 99.0

    def test_caller_arrays_not_frozen_or_aliased(self):
        """Regression: Network must copy its inputs — freezing an alias
        would make the caller's own arrays read-only, and later caller
        mutations would corrupt the network."""
        s, r = paper_random_network(5, rng=1)
        net = Network(s, r)
        s[0, 0] = 12345.0  # caller's array stays writable...
        assert net.senders[0, 0] != 12345.0  # ...and the network unaffected


class TestDistances:
    def test_cross_distance_convention(self):
        """D[j, i] = d(s_j, r_i) — sender row, receiver column."""
        s, r = line_network(2, spacing=10.0, link_length=2.0)
        net = Network(s, r)
        D = net.cross_distances
        # s_0 = (2,0), r_1 = (10,0): D[0,1] = 8.
        assert D[0, 1] == pytest.approx(8.0)
        # s_1 = (12,0), r_0 = (0,0): D[1,0] = 12.
        assert D[1, 0] == pytest.approx(12.0)

    def test_lengths_are_diagonal(self):
        s, r = paper_random_network(8, rng=2)
        net = Network(s, r)
        np.testing.assert_allclose(net.lengths, np.diagonal(net.cross_distances))
        np.testing.assert_allclose(net.lengths, np.linalg.norm(s - r, axis=1))

    def test_distance_clamped(self):
        pts = np.zeros((2, 2))
        net = Network(pts, pts, min_distance=1e-6)
        assert np.all(net.cross_distances >= 1e-6)

    def test_cached_not_recomputed(self):
        s, r = paper_random_network(5, rng=3)
        net = Network(s, r)
        assert net.cross_distances is net.cross_distances

    def test_custom_metric(self):
        s = np.array([[0.0, 0.0]])
        r = np.array([[3.0, 4.0]])
        net = Network(s, r, metric=PNormMetric(1.0))
        assert net.lengths[0] == pytest.approx(7.0)

    def test_length_ratio(self):
        s, r = line_network(2, spacing=100.0, link_length=5.0)
        # Make second link twice as long.
        s = s.copy()
        s[1, 0] += 5.0
        net = Network(s, r)
        assert net.length_ratio == pytest.approx(2.0)


class TestMatrixConstruction:
    def test_from_distance_matrix(self):
        D = np.array([[1.0, 5.0], [4.0, 2.0]])
        net = Network.from_distance_matrix(D)
        assert not net.is_geometric
        np.testing.assert_allclose(net.cross_distances, D)
        np.testing.assert_allclose(net.lengths, [1.0, 2.0])

    def test_coordinates_unavailable(self):
        net = Network.from_distance_matrix(np.ones((2, 2)))
        with pytest.raises(AttributeError):
            _ = net.senders
        with pytest.raises(AttributeError):
            _ = net.metric

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Network.from_distance_matrix([[1.0, -1.0], [1.0, 1.0]])

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            Network.from_distance_matrix(np.ones((2, 3)))


class TestLinksAndSubnetworks:
    def test_link_view(self):
        s, r = paper_random_network(4, rng=4)
        net = Network(s, r)
        link = net.link(2)
        assert link.index == 2
        np.testing.assert_allclose(link.sender, s[2])
        assert link.length == pytest.approx(net.lengths[2])
        assert "Link(2" in str(link)

    def test_link_out_of_range(self):
        s, r = paper_random_network(3, rng=5)
        net = Network(s, r)
        with pytest.raises(IndexError):
            net.link(3)

    def test_links_list(self):
        s, r = paper_random_network(3, rng=6)
        assert [l.index for l in Network(s, r).links] == [0, 1, 2]

    def test_subnetwork_preserves_distances(self):
        s, r = paper_random_network(6, rng=7)
        net = Network(s, r)
        sub = net.subnetwork([4, 1])
        np.testing.assert_allclose(
            sub.cross_distances,
            net.cross_distances[np.ix_([4, 1], [4, 1])],
        )

    def test_subnetwork_of_matrix_network(self):
        D = np.arange(1, 10, dtype=float).reshape(3, 3)
        net = Network.from_distance_matrix(D)
        sub = net.subnetwork([0, 2])
        np.testing.assert_allclose(sub.cross_distances, D[np.ix_([0, 2], [0, 2])])

    @pytest.mark.parametrize("idx", [[], [0, 0], [5]])
    def test_subnetwork_invalid(self, idx):
        s, r = paper_random_network(3, rng=8)
        net = Network(s, r)
        with pytest.raises((ValueError, IndexError)):
            net.subnetwork(idx)

    def test_repr(self):
        s, r = paper_random_network(3, rng=9)
        assert "geometric" in repr(Network(s, r))
        assert "matrix" in repr(Network.from_distance_matrix(np.ones((2, 2))))
