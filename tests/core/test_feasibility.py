"""Tests for power-control feasibility (spectral test + minimal powers)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.feasibility import (
    is_power_feasible,
    min_feasible_powers,
    power_feasibility_margin,
)
from repro.core.network import Network
from repro.core.power import CustomPower
from repro.core.sinr import SINRInstance, mean_signal_matrix
from repro.geometry.placement import line_network, nested_pairs_network, paper_random_network

ALPHA = 2.5
BETA = 1.5


class TestMargin:
    def test_singleton_and_empty(self):
        s, r = line_network(3)
        net = Network(s, r)
        assert power_feasibility_margin(net, [0], BETA, ALPHA) == 1.0
        assert power_feasibility_margin(net, [], BETA, ALPHA) == 1.0

    def test_far_apart_links_feasible(self):
        s, r = line_network(4, spacing=1000.0, link_length=1.0)
        net = Network(s, r)
        assert power_feasibility_margin(net, [0, 1, 2, 3], BETA, ALPHA) > 0.9
        assert is_power_feasible(net, [0, 1, 2, 3], BETA, ALPHA)

    def test_collocated_links_infeasible(self):
        # Two identical-geometry links on top of each other: cross distances
        # comparable to lengths, β >= 1 → infeasible with any power.
        s = np.array([[0.0, 0.0], [0.0, 0.1]])
        r = np.array([[10.0, 0.0], [10.0, 0.1]])
        net = Network(s, r)
        assert not is_power_feasible(net, [0, 1], 2.0, ALPHA)

    def test_margin_decreases_with_beta(self):
        s, r = paper_random_network(6, rng=0)
        net = Network(s, r)
        m1 = power_feasibility_margin(net, np.arange(6), 0.5, ALPHA)
        m2 = power_feasibility_margin(net, np.arange(6), 2.0, ALPHA)
        assert m2 <= m1

    def test_boolean_mask_accepted(self):
        s, r = line_network(3, spacing=500.0)
        net = Network(s, r)
        a = power_feasibility_margin(net, np.array([True, False, True]), BETA, ALPHA)
        b = power_feasibility_margin(net, np.array([0, 2]), BETA, ALPHA)
        assert a == pytest.approx(b)

    def test_index_out_of_range(self):
        s, r = line_network(3)
        with pytest.raises(IndexError):
            power_feasibility_margin(Network(s, r), [5], BETA, ALPHA)


class TestMinFeasiblePowers:
    def _verify(self, net, subset, powers, beta, alpha, noise):
        """The returned powers must actually satisfy every SINR constraint."""
        full = np.full(net.n, 1e-12)
        full[np.asarray(subset)] = powers
        inst = SINRInstance.from_network(net, CustomPower(full), alpha, noise)
        assert inst.is_feasible(np.asarray(subset), beta)

    def test_powers_certify_feasibility_with_noise(self):
        s, r = paper_random_network(8, rng=1, min_length=10, max_length=20)
        net = Network(s, r)
        subset = np.array([0, 2, 5])
        p = min_feasible_powers(net, subset, BETA, ALPHA, noise=1e-4, slack=1.0 + 1e-9)
        assert p is not None and np.all(p > 0)
        self._verify(net, subset, p, BETA, ALPHA, 1e-4)

    def test_zero_noise_scale_free(self):
        s, r = line_network(3, spacing=800.0, link_length=1.0)
        net = Network(s, r)
        subset = np.arange(3)
        p = min_feasible_powers(net, subset, BETA, ALPHA, noise=0.0, slack=1.0 + 1e-9)
        assert p is not None
        self._verify(net, subset, p, BETA, ALPHA, 0.0)
        self._verify(net, subset, 10.0 * p, BETA, ALPHA, 0.0)  # scale invariance

    def test_infeasible_returns_none(self):
        s = np.array([[0.0, 0.0], [0.0, 0.1]])
        r = np.array([[10.0, 0.0], [10.0, 0.1]])
        net = Network(s, r)
        assert min_feasible_powers(net, [0, 1], 2.0, ALPHA) is None

    def test_singleton_fights_only_noise(self):
        s, r = line_network(1, link_length=5.0)
        net = Network(s, r)
        p = min_feasible_powers(net, [0], BETA, ALPHA, noise=0.1, slack=1.0 + 1e-9)
        inst = SINRInstance.from_network(net, CustomPower(p), ALPHA, 0.1)
        assert inst.sinr([True])[0] >= BETA

    def test_empty_subset(self):
        s, r = line_network(2)
        assert min_feasible_powers(Network(s, r), [], BETA, ALPHA).size == 0

    def test_minimality(self):
        """Scaling the minimal solution down must break some constraint
        (ν > 0 case)."""
        s, r = paper_random_network(5, rng=2, min_length=10, max_length=15)
        net = Network(s, r)
        subset = np.arange(5)
        p = min_feasible_powers(net, subset, 0.5, ALPHA, noise=1e-3, slack=1.0 + 1e-9)
        if p is None:
            pytest.skip("random instance infeasible")
        full = np.full(net.n, 1e-12)
        full[subset] = 0.9 * p
        inst = SINRInstance.from_network(net, CustomPower(full), ALPHA, 1e-3)
        assert not inst.is_feasible(subset, 0.5)

    def test_nested_pairs_need_power_control(self):
        """The nested family is infeasible under uniform power but has
        feasible powers — the separation [2] power control exploits."""
        s, r = nested_pairs_network(6, base_length=10.0, growth=2.0)
        net = Network(s, r)
        # Uniform power: middle links fail.
        from repro.core.power import UniformPower

        inst = SINRInstance.from_network(net, UniformPower(1.0), ALPHA, 0.0)
        assert not inst.is_feasible(np.arange(6), 1.0)
        # But some (non-uniform) powers can serve a larger fraction: at
        # minimum the margin-based certificate must agree with the solver.
        margin = power_feasibility_margin(net, np.arange(6), 1.0, ALPHA)
        p = min_feasible_powers(net, np.arange(6), 1.0, ALPHA, 0.0, slack=1.0 + 1e-9)
        assert (p is not None) == (margin > 0.0)

    def test_invalid_slack(self):
        s, r = line_network(2)
        with pytest.raises(ValueError):
            min_feasible_powers(Network(s, r), [0, 1], BETA, ALPHA, slack=0.5)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_solver_agrees_with_margin(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 8))
        s, r = paper_random_network(
            n, rng=gen, min_length=5.0, max_length=30.0, area=200.0
        )
        net = Network(s, r)
        subset = np.arange(n)
        margin = power_feasibility_margin(net, subset, BETA, ALPHA)
        p = min_feasible_powers(net, subset, BETA, ALPHA, noise=1e-5, slack=1.0 + 1e-9)
        if margin > 1e-9:
            assert p is not None
            self._verify(net, subset, p, BETA, ALPHA, 1e-5)
        elif margin < -1e-9:
            assert p is None
