"""Tests for affectance machinery (SINR ⇔ affectance equivalence, Lemma 7)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.affectance import (
    affectance_matrix,
    is_feasible_set,
    max_average_affectance,
    robust_subset,
    total_affectance,
)
from repro.core.sinr import SINRInstance

BETA = 1.5


def random_instance(seed: int, n_max: int = 10) -> SINRInstance:
    gen = np.random.default_rng(seed)
    n = int(gen.integers(2, n_max))
    gains = gen.uniform(0.01, 4.0, (n, n))
    gains[np.diag_indices(n)] += 3.0  # healthy own signal
    return SINRInstance(gains, noise=float(gen.uniform(0.0, 0.5)))


class TestAffectanceMatrix:
    def test_formula(self, two_link_instance):
        a = affectance_matrix(two_link_instance, beta=1.0, clamped=False)
        # a(j, i) = β S̄(j,i) / (S̄(i,i) − βν).
        assert a[1, 0] == pytest.approx(2.0 / (4.0 - 0.5))
        assert a[0, 1] == pytest.approx(1.0 / (8.0 - 0.5))
        assert a[0, 0] == 0.0 and a[1, 1] == 0.0

    def test_clamping(self):
        gains = np.array([[1.0, 50.0], [50.0, 1.0]])
        inst = SINRInstance(gains, noise=0.0)
        a = affectance_matrix(inst, beta=1.0, clamped=True)
        assert a.max() == 1.0
        a_u = affectance_matrix(inst, beta=1.0, clamped=False)
        assert a_u.max() == pytest.approx(50.0)

    def test_noise_blocked_link(self):
        gains = np.array([[1.0, 0.5], [0.5, 1.0]])
        inst = SINRInstance(gains, noise=2.0)  # βν = 2 >= S̄ii for β=1
        a = affectance_matrix(inst, beta=1.0, clamped=False)
        assert np.all(np.isinf(a[[1], [0]]))  # incoming to blocked link 0
        ac = affectance_matrix(inst, beta=1.0, clamped=True)
        assert ac[1, 0] == 1.0

    def test_monotone_in_beta(self, paper_instance):
        a1 = affectance_matrix(paper_instance, beta=1.0, clamped=False)
        a2 = affectance_matrix(paper_instance, beta=2.0, clamped=False)
        assert np.all(a2 >= a1 - 1e-15)


class TestSINREquivalence:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_feasibility_matches_sinr(self, seed):
        """Σ_j a(j,i) ≤ 1 over a set ⇔ every set member meets its SINR."""
        inst = random_instance(seed)
        gen = np.random.default_rng(seed + 1)
        subset = gen.random(inst.n) < 0.6
        assert is_feasible_set(inst, subset, BETA) == inst.is_feasible(subset, BETA)

    def test_total_affectance(self, three_link_instance):
        a = affectance_matrix(three_link_instance, BETA, clamped=False)
        incoming = total_affectance(a, [True, True, False])
        np.testing.assert_allclose(incoming, a[0] + a[1])

    def test_total_affectance_index_list(self, three_link_instance):
        a = affectance_matrix(three_link_instance, BETA, clamped=False)
        np.testing.assert_allclose(
            total_affectance(a, np.array([0, 1])),
            total_affectance(a, [True, True, False]),
        )

    def test_empty_set_feasible(self, three_link_instance):
        assert is_feasible_set(three_link_instance, [], BETA)


class TestRobustSubset:
    def test_lemma7_half_guarantee(self):
        """For feasible L, |L'| >= |L|/2 with bound 2."""
        for seed in range(20):
            inst = random_instance(seed, n_max=12)
            a = affectance_matrix(inst, BETA, clamped=True)
            # Build some feasible set greedily.
            from repro.capacity.greedy import greedy_capacity

            L = greedy_capacity(inst, BETA)
            if L.size == 0:
                continue
            L_prime = robust_subset(a, L, bound=2.0)
            assert L_prime.size >= L.size / 2
            assert set(L_prime.tolist()) <= set(L.tolist())

    def test_boolean_mask_accepted(self, three_link_instance):
        a = affectance_matrix(three_link_instance, BETA, clamped=True)
        mask = np.array([True, False, True])
        out = robust_subset(a, mask)
        assert set(out.tolist()) <= {0, 2}

    def test_empty(self, three_link_instance):
        a = affectance_matrix(three_link_instance, BETA, clamped=True)
        assert robust_subset(a, np.array([], dtype=int)).size == 0


class TestMaxAverageAffectance:
    def test_trivial_sets(self, three_link_instance):
        a = affectance_matrix(three_link_instance, BETA, clamped=True)
        assert max_average_affectance(a, np.array([0])) == 0.0
        assert max_average_affectance(a, np.array([], dtype=int)) == 0.0

    def test_at_least_full_set_average(self):
        inst = random_instance(3)
        a = affectance_matrix(inst, BETA, clamped=True)
        full_avg = a.sum() / inst.n
        assert max_average_affectance(a) >= full_avg - 1e-12

    def test_at_least_any_pair_average(self):
        """Peeling must not fall below dense sub-pairs by more than 2x
        (it is a 2-approximation); check it at least sees the full set and
        never returns a negative value."""
        gen = np.random.default_rng(0)
        a = np.zeros((5, 5))
        a[0, 1] = a[1, 0] = 1.0  # one very dense pair
        est = max_average_affectance(a)
        assert est >= 0.5  # 2-approx of the optimal pair average 1.0

    def test_symmetric_clique(self):
        n = 4
        a = np.full((n, n), 0.3)
        np.fill_diagonal(a, 0.0)
        # Every subset of size k has average (k-1)*0.3; max at k=n.
        assert max_average_affectance(a) == pytest.approx((n - 1) * 0.3)
