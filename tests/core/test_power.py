"""Tests for power assignments."""

import numpy as np
import pytest

from repro.core.power import (
    CustomPower,
    LengthScaledPower,
    LinearPower,
    SquareRootPower,
    UniformPower,
)

LENGTHS = np.array([20.0, 30.0, 40.0])
ALPHA = 2.2


class TestUniformPower:
    def test_constant_vector(self):
        p = UniformPower(2.0).powers(LENGTHS, ALPHA)
        np.testing.assert_allclose(p, 2.0)

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            UniformPower(0.0)
        with pytest.raises(ValueError):
            UniformPower(-3.0)

    def test_is_oblivious(self):
        assert UniformPower(1.0).is_oblivious


class TestSquareRootPower:
    def test_paper_formula(self):
        """Figure 1: p_i = 2 * sqrt(d_i^2.2)."""
        p = SquareRootPower(2.0).powers(LENGTHS, 2.2)
        np.testing.assert_allclose(p, 2.0 * np.sqrt(LENGTHS**2.2))

    def test_monotone_in_length(self):
        p = SquareRootPower(1.0).powers(LENGTHS, ALPHA)
        assert np.all(np.diff(p) > 0)


class TestLinearPower:
    def test_equalizes_received_signal(self):
        """p_i / d_i^α must be constant under linear power."""
        p = LinearPower(3.0).powers(LENGTHS, ALPHA)
        np.testing.assert_allclose(p / LENGTHS**ALPHA, 3.0)


class TestLengthScaledPower:
    @pytest.mark.parametrize("tau", [0.0, 0.25, 0.5, 1.0])
    def test_family_formula(self, tau):
        p = LengthScaledPower(tau, scale=1.5).powers(LENGTHS, ALPHA)
        np.testing.assert_allclose(p, 1.5 * LENGTHS ** (tau * ALPHA))

    def test_special_cases_agree(self):
        np.testing.assert_allclose(
            LengthScaledPower(0.5, 2.0).powers(LENGTHS, ALPHA),
            SquareRootPower(2.0).powers(LENGTHS, ALPHA),
        )
        np.testing.assert_allclose(
            LengthScaledPower(0.0, 2.0).powers(LENGTHS, ALPHA),
            UniformPower(2.0).powers(LENGTHS, ALPHA),
        )

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            LengthScaledPower(-0.5)
        with pytest.raises(ValueError):
            LengthScaledPower(float("nan"))

    def test_equality_and_hash(self):
        assert SquareRootPower(2.0) == LengthScaledPower(0.5, 2.0)
        assert hash(SquareRootPower(2.0)) == hash(LengthScaledPower(0.5, 2.0))
        assert UniformPower(1.0) != UniformPower(2.0)


class TestCustomPower:
    def test_returns_stored_vector(self):
        cp = CustomPower([1.0, 2.0, 3.0])
        np.testing.assert_allclose(cp.powers(LENGTHS, ALPHA), [1.0, 2.0, 3.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CustomPower([1.0, 2.0]).powers(LENGTHS, ALPHA)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            CustomPower([1.0, 0.0])
        with pytest.raises(ValueError):
            CustomPower([1.0, -2.0])
        with pytest.raises(ValueError):
            CustomPower([1.0, np.inf])

    def test_not_oblivious(self):
        assert not CustomPower([1.0]).is_oblivious

    def test_immutable_copy(self):
        src = np.array([1.0, 2.0])
        cp = CustomPower(src)
        src[0] = 99.0
        np.testing.assert_allclose(cp.vector, [1.0, 2.0])
        with pytest.raises(ValueError):
            cp.vector[0] = 5.0

    def test_equality_by_values(self):
        assert CustomPower([1.0, 2.0]) == CustomPower([1.0, 2.0])
        assert CustomPower([1.0, 2.0]) != CustomPower([1.0, 3.0])

    def test_cache_keys_distinguish_assignments(self):
        keys = {
            UniformPower(1.0).cache_key,
            UniformPower(2.0).cache_key,
            SquareRootPower(1.0).cache_key,
            LinearPower(1.0).cache_key,
            CustomPower([1.0, 2.0]).cache_key,
        }
        assert len(keys) == 5
        for k in keys:
            hash(k)  # must be hashable
