"""Shared fixtures: canonical instances used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.network import Network
from repro.engine import guards


@pytest.fixture(autouse=True)
def _isolate_guard_mode():
    """The numerical-guard mode is process-global (it must ship to pool
    workers); CLI entry points set it to their --guards flag.  Restore the
    pre-test mode so tests that exercise the CLI cannot leak 'warn' into
    tests that assume the 'off' default."""
    previous = guards.get_guard_mode()
    yield
    guards.set_guard_mode(previous)
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network


@pytest.fixture
def two_link_instance() -> SINRInstance:
    """Hand-checkable 2-link instance.

    Gains (S̄[j, i], sender row / receiver column)::

        [[4.0, 1.0],
         [2.0, 8.0]]

    noise ν = 0.5.  With both links transmitting:
    γ_1^nf = 4 / (2 + 0.5) = 1.6 and γ_2^nf = 8 / (1 + 0.5) = 16/3.
    """
    gains = np.array([[4.0, 1.0], [2.0, 8.0]])
    return SINRInstance(gains, noise=0.5)


@pytest.fixture
def three_link_instance() -> SINRInstance:
    """A 3-link instance with one weak link (used by feasibility tests)."""
    gains = np.array(
        [
            [10.0, 2.0, 0.5],
            [1.0, 6.0, 1.5],
            [0.2, 0.8, 2.0],
        ]
    )
    return SINRInstance(gains, noise=0.25)


@pytest.fixture
def paper_network() -> Network:
    """A 30-link Figure-1-style network (fixed seed)."""
    senders, receivers = paper_random_network(30, rng=12345)
    return Network(senders, receivers)


@pytest.fixture
def paper_instance(paper_network) -> SINRInstance:
    """Uniform-power instance on :func:`paper_network` with Figure-1 physics."""
    return SINRInstance.from_network(
        paper_network, UniformPower(2.0), alpha=2.2, noise=4e-7
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(987654321)
