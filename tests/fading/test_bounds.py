"""Tests for Lemma 1's bounds and Observation 1's inequalities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sinr import SINRInstance
from repro.fading.bounds import (
    observation1_first,
    observation1_second,
    success_probability_lower,
    success_probability_upper,
)
from repro.fading.success import success_probability


def random_instance(seed: int, n_max: int = 12) -> SINRInstance:
    gen = np.random.default_rng(seed)
    n = int(gen.integers(2, n_max))
    gains = gen.uniform(0.001, 5.0, (n, n))
    gains[np.diag_indices(n)] += 1.0
    return SINRInstance(gains, noise=float(gen.uniform(0.0, 1.0)))


class TestObservation1:
    @given(
        # The paper states the inequality "for all x ∈ R" but its proof
        # (and every use in Lemma 1) has x >= 0; at x = -1 the right side
        # degenerates.  We verify the domain the library relies on.
        x=st.floats(min_value=0.0, max_value=50.0),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_first_inequality(self, x, q):
        lhs, rhs = observation1_first(x, q)
        assert lhs <= rhs + 1e-12

    @given(
        x=st.floats(min_value=1e-9, max_value=1.0),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_second_inequality(self, x, q):
        lhs, rhs = observation1_second(x, q)
        assert lhs <= rhs + 1e-12

    def test_vectorized(self):
        x = np.linspace(0.01, 1.0, 20)
        q = np.linspace(0.0, 1.0, 20)
        lhs, rhs = observation1_first(x, q)
        assert lhs.shape == (20,)
        assert np.all(lhs <= rhs + 1e-12)

    def test_tight_at_q_zero(self):
        lhs, rhs = observation1_first(2.0, 0.0)
        assert lhs == pytest.approx(rhs)


class TestLemma1Sandwich:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        beta=st.floats(min_value=0.05, max_value=20.0),
    )
    def test_sandwich(self, seed, beta):
        inst = random_instance(seed)
        gen = np.random.default_rng(seed + 1)
        q = gen.random(inst.n)
        exact = success_probability(inst, q, beta)
        lo = success_probability_lower(inst, q, beta)
        hi = success_probability_upper(inst, q, beta)
        assert np.all(lo <= exact + 1e-12)
        assert np.all(exact <= hi + 1e-12)

    def test_lower_bound_formula(self, two_link_instance):
        q = np.array([1.0, 0.5])
        beta = 2.0
        lo = success_probability_lower(two_link_instance, q, beta)
        # Link 0: exp(-β/S̄00 (ν + S̄10 q1)) = exp(-2/4 (0.5 + 2*0.5))
        assert lo[0] == pytest.approx(1.0 * np.exp(-0.5 * (0.5 + 1.0)))

    def test_upper_bound_formula(self, two_link_instance):
        q = np.array([1.0, 1.0])
        beta = 2.0
        hi = success_probability_upper(two_link_instance, q, beta)
        # Link 0: exp(-βν/S̄00 - min(1/2, βS̄10/(2S̄00))) with βS̄10/(2S̄00)=0.5
        assert hi[0] == pytest.approx(np.exp(-2.0 * 0.5 / 4.0 - 0.5))

    def test_bounds_tight_without_interference(self):
        """With one transmitting link the lower bound is exact."""
        inst = SINRInstance(np.array([[2.0, 1.0], [1.0, 2.0]]), noise=0.3)
        q = np.array([1.0, 0.0])
        exact = success_probability(inst, q, 1.0)
        lo = success_probability_lower(inst, q, 1.0)
        assert lo[0] == pytest.approx(exact[0])

    def test_lemma2_one_over_e_consequence(self):
        """For sets feasible at β in the non-fading model, the conditional
        Rayleigh success probability at β is at least 1/e (core of Lemma 2)."""
        for seed in range(15):
            inst = random_instance(seed)
            from repro.capacity.greedy import greedy_capacity

            beta = 0.8
            chosen = greedy_capacity(inst, beta)
            if chosen.size == 0:
                continue
            q = np.zeros(inst.n)
            q[chosen] = 1.0
            probs = success_probability(inst, q, beta)
            assert np.all(probs[chosen] >= np.exp(-1.0) - 1e-12)


class TestDegenerateInputs:
    def test_q_zero_gives_zero(self, two_link_instance):
        q = np.zeros(2)
        assert np.all(success_probability_lower(two_link_instance, q, 1.0) == 0.0)
        assert np.all(success_probability_upper(two_link_instance, q, 1.0) == 0.0)

    def test_invalid_q(self, two_link_instance):
        with pytest.raises(ValueError):
            success_probability_lower(two_link_instance, [2.0, 0.0], 1.0)
