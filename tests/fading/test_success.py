"""Tests for Theorem 1 — exact Rayleigh success probabilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sinr import SINRInstance
from repro.fading.success import (
    success_probability,
    success_probability_conditional,
    success_probability_conditional_batch,
)


def random_instance(seed: int, n_max: int = 10) -> SINRInstance:
    gen = np.random.default_rng(seed)
    n = int(gen.integers(2, n_max))
    gains = gen.uniform(0.01, 4.0, (n, n))
    gains[np.diag_indices(n)] += 2.0
    return SINRInstance(gains, noise=float(gen.uniform(0.0, 0.5)))


class TestClosedForm:
    def test_two_link_hand_formula(self, two_link_instance):
        """Direct check of Theorem 1's product on the 2-link instance."""
        q = np.array([0.7, 0.4])
        beta = 1.5
        inst = two_link_instance
        expected_0 = (
            0.7
            * np.exp(-beta * 0.5 / 4.0)
            * (1.0 - beta * 0.4 / (beta + 4.0 / 2.0))
        )
        expected_1 = (
            0.4
            * np.exp(-beta * 0.5 / 8.0)
            * (1.0 - beta * 0.7 / (beta + 8.0 / 1.0))
        )
        out = success_probability(inst, q, beta)
        assert out[0] == pytest.approx(expected_0)
        assert out[1] == pytest.approx(expected_1)

    def test_isolated_link_exponential_tail(self):
        """Single link vs noise: P[S >= βν] = exp(-βν / S̄) exactly."""
        inst = SINRInstance(np.array([[3.0]]), noise=2.0)
        out = success_probability(inst, [1.0], 1.5)
        assert out[0] == pytest.approx(np.exp(-1.5 * 2.0 / 3.0))

    def test_no_noise_no_interference_certain(self):
        inst = SINRInstance(np.array([[3.0, 0.0], [0.0, 5.0]]), noise=0.0)
        out = success_probability(inst, [1.0, 1.0], 2.0)
        np.testing.assert_allclose(out, 1.0)

    def test_silent_link_probability_zero(self, two_link_instance):
        out = success_probability(two_link_instance, [0.0, 1.0], 1.0)
        assert out[0] == 0.0

    def test_zero_mean_interferer_harmless(self):
        gains = np.array([[3.0, 0.0], [0.0, 5.0]])
        inst = SINRInstance(gains, noise=0.1)
        with_both = success_probability(inst, [1.0, 1.0], 1.0)
        alone = success_probability(inst, [1.0, 0.0], 1.0)
        assert with_both[0] == pytest.approx(alone[0])


class TestMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_decreasing_in_beta(self, seed):
        inst = random_instance(seed)
        gen = np.random.default_rng(seed + 1)
        q = gen.random(inst.n)
        p1 = success_probability(inst, q, 0.5)
        p2 = success_probability(inst, q, 1.5)
        assert np.all(p2 <= p1 + 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_decreasing_in_others_q(self, seed):
        """Raising an interferer's transmit probability can only hurt."""
        inst = random_instance(seed)
        gen = np.random.default_rng(seed + 2)
        q = gen.random(inst.n)
        q_hot = q.copy()
        j = int(gen.integers(0, inst.n))
        q_hot[j] = 1.0
        p = success_probability(inst, q, 1.0)
        p_hot = success_probability(inst, q_hot, 1.0)
        others = np.arange(inst.n) != j
        assert np.all(p_hot[others] <= p[others] + 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_linear_in_own_q(self, seed):
        """Q_i is exactly q_i times the conditional probability."""
        inst = random_instance(seed)
        gen = np.random.default_rng(seed + 3)
        q = gen.random(inst.n)
        cond = success_probability_conditional(inst, q, 1.0)
        np.testing.assert_allclose(success_probability(inst, q, 1.0), q * cond)

    def test_probabilities_in_unit_interval(self):
        for seed in range(20):
            inst = random_instance(seed)
            q = np.random.default_rng(seed).random(inst.n)
            p = success_probability(inst, q, 2.0)
            assert np.all(p >= 0.0) and np.all(p <= 1.0)


class TestPerLinkBeta:
    def test_vector_beta_matches_scalar(self, three_link_instance):
        q = np.array([0.5, 0.5, 0.5])
        scalar = success_probability(three_link_instance, q, 2.0)
        vector = success_probability(three_link_instance, q, np.full(3, 2.0))
        np.testing.assert_allclose(scalar, vector)

    def test_mixed_thresholds(self, three_link_instance):
        q = np.array([1.0, 1.0, 1.0])
        betas = np.array([0.5, 1.0, 2.0])
        out = success_probability(three_link_instance, q, betas)
        for i, b in enumerate(betas):
            assert out[i] == pytest.approx(
                success_probability(three_link_instance, q, float(b))[i]
            )

    def test_invalid_beta(self, two_link_instance):
        with pytest.raises(ValueError):
            success_probability(two_link_instance, [1.0, 1.0], 0.0)
        with pytest.raises(ValueError):
            success_probability(two_link_instance, [1.0, 1.0], np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            success_probability(two_link_instance, [1.0, 1.0], np.array([1.0]))


class TestBatch:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_batch_matches_single(self, seed):
        inst = random_instance(seed)
        gen = np.random.default_rng(seed + 4)
        patterns = gen.random((6, inst.n)) < 0.5
        batch = success_probability_conditional_batch(inst, patterns, 1.2)
        for t in range(6):
            single = success_probability_conditional(
                inst, patterns[t].astype(np.float64), 1.2
            )
            np.testing.assert_allclose(batch[t], single, rtol=1e-10)

    def test_shape_validation(self, two_link_instance):
        with pytest.raises(ValueError):
            success_probability_conditional_batch(
                two_link_instance, np.zeros((3, 5), dtype=bool), 1.0
            )

    def test_q_validation(self, two_link_instance):
        with pytest.raises(ValueError):
            success_probability(two_link_instance, [0.5, 1.5], 1.0)
