"""Tests for the slot-level Rayleigh simulation."""

import numpy as np
import pytest
from scipy import stats

from repro.core.sinr import SINRInstance
from repro.fading.rayleigh import (
    sample_fading_gains,
    simulate_sinr,
    simulate_sinr_patterns,
    simulate_slot,
    simulate_slots,
    simulate_slots_bernoulli,
)
from repro.fading.success import success_probability


class TestSampling:
    def test_shapes(self, two_link_instance):
        assert sample_fading_gains(two_link_instance, rng=0).shape == (2, 2)
        assert sample_fading_gains(two_link_instance, rng=0, size=5).shape == (5, 2, 2)

    def test_exponential_means(self, two_link_instance):
        draws = sample_fading_gains(two_link_instance, rng=1, size=20000)
        np.testing.assert_allclose(
            draws.mean(axis=0), two_link_instance.gains, rtol=0.05
        )

    def test_exponential_distribution_ks(self):
        """Kolmogorov–Smirnov: draws for one entry follow Exp(mean)."""
        inst = SINRInstance(np.array([[2.0]]), noise=0.0)
        draws = sample_fading_gains(inst, rng=2, size=5000)[:, 0, 0]
        _, pvalue = stats.kstest(draws, "expon", args=(0.0, 2.0))
        assert pvalue > 0.01

    def test_zero_mean_entry_zero_draws(self):
        inst = SINRInstance(np.array([[1.0, 0.0], [0.0, 1.0]]), noise=0.0)
        draws = sample_fading_gains(inst, rng=3, size=100)
        assert np.all(draws[:, 0, 1] == 0.0)

    def test_independent_across_slots(self):
        inst = SINRInstance(np.array([[1.0]]), noise=0.0)
        draws = sample_fading_gains(inst, rng=4, size=2000)[:, 0, 0]
        corr = np.corrcoef(draws[:-1], draws[1:])[0, 1]
        assert abs(corr) < 0.1


class TestSimulateSinr:
    def test_silent_links_zero(self, two_link_instance):
        out = simulate_sinr(two_link_instance, [True, False], rng=0, num_slots=4)
        assert out.shape == (4, 2)
        assert np.all(out[:, 1] == 0.0)
        assert np.all(out[:, 0] > 0.0)

    def test_nobody_transmits(self, two_link_instance):
        out = simulate_sinr(two_link_instance, [False, False], rng=0, num_slots=3)
        assert np.all(out == 0.0)

    def test_sinr_definition_respected(self):
        """γ^R = S_ii / (Σ S_ji + ν) — mean over slots must match the
        analytic expectation of the ratio to within MC error for a
        noise-dominated single link (where it is exponential/const)."""
        inst = SINRInstance(np.array([[3.0]]), noise=1.5)
        out = simulate_sinr(inst, [True], rng=5, num_slots=20000)[:, 0]
        # SINR = Exp(3)/1.5, mean 2.
        assert out.mean() == pytest.approx(2.0, rel=0.05)

    def test_invalid_num_slots(self, two_link_instance):
        with pytest.raises(ValueError):
            simulate_sinr(two_link_instance, [True, True], rng=0, num_slots=0)


class TestSlotSimulation:
    def test_simulate_slot_mask_semantics(self, two_link_instance):
        ok = simulate_slot(two_link_instance, [True, False], beta=0.01, rng=6)
        assert not ok[1]  # silent link can never succeed

    def test_frequency_matches_theorem1(self, paper_instance):
        """Explicit exponential sampling reproduces the closed form."""
        n = paper_instance.n
        active = np.zeros(n, dtype=bool)
        active[:10] = True
        beta = 2.5
        trials = 4000
        hits = simulate_slots(
            paper_instance, active, beta, rng=7, num_slots=trials
        ).sum(axis=0)
        q = active.astype(np.float64)
        expected = success_probability(paper_instance, q, beta)
        freq = hits / trials
        band = 4.0 * np.sqrt(expected * (1 - expected) / trials) + 8.0 / trials
        assert np.all(np.abs(freq - expected) <= band)

    def test_bernoulli_path_matches_theorem1(self, paper_instance):
        """The fast path has exactly the same marginals."""
        n = paper_instance.n
        active = np.zeros(n, dtype=bool)
        active[:10] = True
        beta = 2.5
        trials = 4000
        hits = simulate_slots_bernoulli(
            paper_instance, active, beta, rng=8, num_slots=trials
        ).sum(axis=0)
        expected = success_probability(paper_instance, active.astype(float), beta)
        freq = hits / trials
        band = 4.0 * np.sqrt(expected * (1 - expected) / trials) + 8.0 / trials
        assert np.all(np.abs(freq - expected) <= band)

    def test_explicit_and_bernoulli_distributions_agree(self, paper_instance):
        """Joint success *counts* per slot have the same distribution in
        both paths (successes are independent across links given the
        pattern) — compare count histograms with a chi-square-ish bound."""
        n = paper_instance.n
        active = np.zeros(n, dtype=bool)
        active[:12] = True
        beta = 2.5
        trials = 3000
        counts_a = simulate_slots(
            paper_instance, active, beta, rng=9, num_slots=trials
        ).sum(axis=1)
        counts_b = simulate_slots_bernoulli(
            paper_instance, active, beta, rng=10, num_slots=trials
        ).sum(axis=1)
        assert abs(counts_a.mean() - counts_b.mean()) < 0.35
        assert abs(counts_a.std() - counts_b.std()) < 0.35

    def test_per_link_beta_in_bernoulli(self, three_link_instance):
        active = np.array([True, True, True])
        betas = np.array([0.5, 1.0, 2.0])
        out = simulate_slots_bernoulli(
            three_link_instance, active, betas, rng=11, num_slots=2000
        )
        expected = success_probability(three_link_instance, active.astype(float), betas)
        np.testing.assert_allclose(out.mean(axis=0), expected, atol=0.06)

    def test_chunking_consistency(self, two_link_instance):
        """Chunked long runs must still produce the right marginals."""
        import repro.fading.rayleigh as ray

        old = ray._BLOCK_ELEMENTS
        try:
            ray._BLOCK_ELEMENTS = 8  # force many tiny chunks
            out = simulate_sinr(two_link_instance, [True, True], rng=12, num_slots=50)
            assert out.shape == (50, 2)
            assert np.all(out > 0.0)
        finally:
            ray._BLOCK_ELEMENTS = old


class TestSimulateSinrPatterns:
    def test_shape_and_masking(self, two_link_instance):
        patterns = np.array([[True, False], [False, False], [True, True]])
        out = simulate_sinr_patterns(two_link_instance, patterns, rng=0)
        assert out.shape == (3, 2)
        assert np.all(out[~patterns] == 0.0)
        assert np.all(out[0, 0] > 0.0)
        assert np.all(out[2] > 0.0)

    def test_matches_theorem1_per_pattern(self, paper_instance):
        """Success frequencies under pattern-varying masks reproduce the
        exact law: each slot's pattern is Bernoulli(q) and the batched
        kernel's thresholded SINR must match Theorem 1's Q_i(q, β)."""
        n = paper_instance.n
        beta = 2.5
        trials = 6000
        gen = np.random.default_rng(13)
        q = np.full(n, 0.4)
        patterns = gen.random((trials, n)) < q
        sinr = simulate_sinr_patterns(paper_instance, patterns, gen)
        freq = ((sinr >= beta) & patterns).sum(axis=0) / trials
        expected = success_probability(paper_instance, q, beta)
        band = 4.0 * np.sqrt(expected * (1 - expected) / trials) + 8.0 / trials
        assert np.all(np.abs(freq - expected) <= band)

    def test_agrees_with_per_pattern_loop(self, paper_instance):
        """Statistical equivalence with the seed's loop kernel: running
        ``simulate_slots`` pattern-by-pattern and the batched kernel give
        the same per-link success frequencies up to MC noise."""
        n = paper_instance.n
        beta = 2.5
        trials = 3000
        gen = np.random.default_rng(14)
        patterns = gen.random((trials, n)) < 0.5
        sinr = simulate_sinr_patterns(paper_instance, patterns, gen)
        batched = ((sinr >= beta) & patterns).sum(axis=0) / trials

        loop_gen = np.random.default_rng(15)
        loop_hits = np.zeros(n)
        for row in patterns[:600]:  # loop kernel is slow; subsample
            loop_hits += simulate_slots(
                paper_instance, row, beta, rng=loop_gen, num_slots=1
            )[0]
        loop = loop_hits / 600
        band = 4.0 * np.sqrt(np.maximum(batched * (1 - batched), 1e-3) / 600)
        assert np.all(np.abs(batched - loop) <= band + 0.02)

    def test_chunking_consistency(self, two_link_instance):
        import repro.fading.rayleigh as ray

        patterns = np.ones((40, 2), dtype=bool)
        whole = simulate_sinr_patterns(
            two_link_instance, patterns, rng=np.random.default_rng(16)
        )
        old = ray._BLOCK_ELEMENTS
        try:
            ray._BLOCK_ELEMENTS = 8  # force many tiny chunks
            chunked = simulate_sinr_patterns(
                two_link_instance, patterns, rng=np.random.default_rng(16)
            )
        finally:
            ray._BLOCK_ELEMENTS = old
        np.testing.assert_allclose(whole, chunked)
