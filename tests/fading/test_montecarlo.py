"""Tests for the Monte-Carlo estimators."""

import numpy as np
import pytest

from repro.core.sinr import SINRInstance
from repro.fading.montecarlo import (
    estimate_expected_utility,
    estimate_success_probability,
    expected_successes_exact,
)
from repro.fading.success import success_probability
from repro.utility.binary import BinaryUtility
from repro.utility.shannon import ShannonUtility


class TestExpectedSuccessesExact:
    def test_matches_sum_of_theorem1(self, paper_instance):
        q = np.full(paper_instance.n, 0.4)
        total = expected_successes_exact(paper_instance, q, 2.5)
        assert total == pytest.approx(
            float(success_probability(paper_instance, q, 2.5).sum())
        )

    def test_zero_when_silent(self, two_link_instance):
        assert expected_successes_exact(two_link_instance, [0.0, 0.0], 1.0) == 0.0


class TestEstimateSuccessProbability:
    def test_converges_to_exact(self, two_link_instance):
        q = np.array([0.6, 0.8])
        exact = success_probability(two_link_instance, q, 1.2)
        mc = estimate_success_probability(
            two_link_instance, q, 1.2, rng=0, num_samples=6000
        )
        np.testing.assert_allclose(mc, exact, atol=0.04)

    def test_validation(self, two_link_instance):
        with pytest.raises(ValueError):
            estimate_success_probability(
                two_link_instance, [0.5, 0.5], 1.0, num_samples=0
            )


class TestEstimateExpectedUtility:
    def test_binary_matches_exact(self, three_link_instance):
        """For binary utilities the MC estimate must agree with Σ Q_i."""
        q = np.array([0.5, 1.0, 0.7])
        beta = 1.0
        profile = BinaryUtility(3, beta)
        total, per_link = estimate_expected_utility(
            three_link_instance, profile.evaluate, q, rng=1, num_samples=8000
        )
        exact = expected_successes_exact(three_link_instance, q, beta)
        assert total == pytest.approx(exact, abs=0.1)
        assert per_link.shape == (3,)
        assert total == pytest.approx(float(per_link.sum()))

    def test_silent_network_zero(self, two_link_instance):
        total, per_link = estimate_expected_utility(
            two_link_instance,
            BinaryUtility(2, 1.0).evaluate,
            [0.0, 0.0],
            rng=2,
            num_samples=100,
        )
        assert total == 0.0 and np.all(per_link == 0.0)

    def test_shannon_single_link_analytic(self):
        """E[log(1 + Exp(m)/ν)] has a closed form via the exponential
        integral; verify against scipy for one link."""
        from scipy.special import exp1

        mean, nu = 3.0, 1.5
        inst = SINRInstance(np.array([[mean]]), noise=nu)
        total, _ = estimate_expected_utility(
            inst, ShannonUtility(1).evaluate, [1.0], rng=3, num_samples=20000
        )
        # E[log(1 + X/ν)] with X ~ Exp(mean): = e^{ν/mean} E1(ν/mean).
        analytic = float(np.exp(nu / mean) * exp1(nu / mean))
        assert total == pytest.approx(analytic, rel=0.05)

    def test_invalid_samples(self, two_link_instance):
        with pytest.raises(ValueError):
            estimate_expected_utility(
                two_link_instance,
                BinaryUtility(2, 1.0).evaluate,
                [0.5, 0.5],
                num_samples=-1,
            )
