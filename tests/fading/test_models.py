"""Tests for the generalized fading families (Nakagami, Rician)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.models import (
    NakagamiFading,
    NoFading,
    RayleighFading,
    RicianFading,
    expected_successes_with_model,
    simulate_slots_with_model,
)
from repro.geometry.placement import paper_random_network
from repro.transform.blackbox import rayleigh_expected_binary

MEANS = np.array([[2.0, 0.5], [1.0, 3.0]])


@pytest.fixture
def instance():
    s, r = paper_random_network(25, rng=55)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestMeanNormalization:
    @pytest.mark.parametrize(
        "model",
        [
            RayleighFading(),
            NakagamiFading(0.5),
            NakagamiFading(1.0),
            NakagamiFading(4.0),
            RicianFading(0.0),
            RicianFading(3.0),
            NoFading(),
        ],
    )
    def test_mean_equals_nonfading_gain(self, model):
        gen = np.random.default_rng(0)
        draws = model.sample(MEANS, gen, size=20000)
        np.testing.assert_allclose(draws.mean(axis=0), MEANS, rtol=0.05)

    @pytest.mark.parametrize(
        "model", [RayleighFading(), NakagamiFading(2.0), RicianFading(1.0)]
    )
    def test_zero_mean_gives_zero(self, model):
        gen = np.random.default_rng(1)
        draws = model.sample(np.array([[0.0]]), gen, size=50)
        assert np.all(draws == 0.0)


class TestFamilyIdentities:
    def test_nakagami_m1_is_exponential(self):
        gen = np.random.default_rng(2)
        draws = NakagamiFading(1.0).sample(np.array([[2.0]]), gen, size=6000)[:, 0, 0]
        _, p = stats.kstest(draws, "expon", args=(0.0, 2.0))
        assert p > 0.01

    def test_rician_k0_is_exponential(self):
        gen = np.random.default_rng(3)
        draws = RicianFading(0.0).sample(np.array([[2.0]]), gen, size=6000)[:, 0, 0]
        _, p = stats.kstest(draws, "expon", args=(0.0, 2.0))
        assert p > 0.01

    def test_variance_shrinks_with_m(self):
        gen = np.random.default_rng(4)
        variances = [
            NakagamiFading(m).sample(np.array([[1.0]]), gen, size=8000).var()
            for m in (0.5, 1.0, 4.0, 16.0)
        ]
        assert variances == sorted(variances, reverse=True)
        # Analytic: Var = 1/m for unit mean.
        assert variances[1] == pytest.approx(1.0, rel=0.15)

    def test_variance_shrinks_with_k(self):
        gen = np.random.default_rng(5)
        variances = [
            RicianFading(k).sample(np.array([[1.0]]), gen, size=8000).var()
            for k in (0.0, 1.0, 4.0, 16.0)
        ]
        assert variances == sorted(variances, reverse=True)

    def test_no_fading_deterministic(self):
        draws = NoFading().sample(MEANS, np.random.default_rng(6), size=3)
        for t in range(3):
            np.testing.assert_array_equal(draws[t], MEANS)

    def test_validation(self):
        with pytest.raises(ValueError):
            NakagamiFading(0.2)
        with pytest.raises(ValueError):
            NakagamiFading(0.0)
        with pytest.raises(ValueError):
            RicianFading(-1.0)

    def test_names(self):
        assert RayleighFading().name == "rayleigh"
        assert "m=2" in NakagamiFading(2.0).name
        assert "K=3" in RicianFading(3.0).name


class TestSlotSimulation:
    def test_rayleigh_model_matches_theorem1(self, instance):
        active = np.zeros(instance.n, dtype=bool)
        active[:10] = True
        beta = 2.5
        est = expected_successes_with_model(
            instance, active, beta, RayleighFading(), rng=7, num_slots=4000
        )
        exact = rayleigh_expected_binary(instance, np.flatnonzero(active), beta)
        assert est == pytest.approx(exact, abs=0.35)

    def test_nonfading_model_matches_deterministic(self, instance):
        active = np.zeros(instance.n, dtype=bool)
        active[:10] = True
        beta = 2.5
        est = expected_successes_with_model(
            instance, active, beta, NoFading(), rng=8, num_slots=10
        )
        det = int(instance.successes(active, beta)[active].sum())
        assert est == pytest.approx(det)

    def test_milder_fading_more_successes(self, instance):
        """Retention increases with Nakagami m on a feasible set."""
        from repro.capacity.greedy import greedy_capacity

        beta = 2.5
        chosen = greedy_capacity(instance, beta)
        values = [
            expected_successes_with_model(
                instance, chosen, beta, NakagamiFading(m), rng=9, num_slots=3000
            )
            for m in (1.0, 4.0, 32.0)
        ]
        assert values[0] <= values[1] + 0.3 <= values[2] + 0.6
        assert values[-1] >= 0.95 * chosen.size

    def test_silent_set(self, instance):
        out = simulate_slots_with_model(
            instance, np.zeros(instance.n, dtype=bool), 2.5, RayleighFading(), rng=10,
            num_slots=5,
        )
        assert not out.any()

    def test_validation(self, instance):
        with pytest.raises(ValueError):
            simulate_slots_with_model(
                instance, np.ones(instance.n, dtype=bool), 2.5, RayleighFading(),
                num_slots=0,
            )

    def test_chunking(self, instance):
        """Tiny chunk size must not change the marginal statistics."""
        import repro.fading.models as models_mod

        active = np.zeros(instance.n, dtype=bool)
        active[:5] = True
        out = simulate_slots_with_model(
            instance, active, 2.5, RayleighFading(), rng=11, num_slots=300
        )
        assert out.shape == (300, instance.n)
        assert out[:, ~active].sum() == 0
