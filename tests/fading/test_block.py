"""Tests for the block-fading channel."""

import numpy as np
import pytest

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.block import BlockFadingChannel
from repro.fading.models import NakagamiFading, NoFading
from repro.fading.success import success_probability
from repro.geometry.placement import paper_random_network

BETA = 2.5


@pytest.fixture
def instance():
    s, r = paper_random_network(20, rng=66)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestChannelMechanics:
    def test_time_advances(self, instance):
        ch = BlockFadingChannel(instance, block_length=3, rng=0)
        active = np.ones(instance.n, dtype=bool)
        for expected_t in range(1, 7):
            ch.step(active, BETA)
            assert ch.time == expected_t

    def test_within_block_identical_channel(self, instance):
        """Same pattern, same block → identical outcomes (channel frozen)."""
        ch = BlockFadingChannel(instance, block_length=4, rng=1)
        active = np.ones(instance.n, dtype=bool)
        first = ch.step(active, BETA)
        for _ in range(3):  # remaining slots of the block
            np.testing.assert_array_equal(ch.step(active, BETA), first)

    def test_between_blocks_channel_redraws(self, instance):
        ch = BlockFadingChannel(instance, block_length=2, rng=2)
        active = np.ones(instance.n, dtype=bool)
        outcomes = [tuple(ch.step(active, BETA)) for _ in range(40)]
        # Consecutive blocks of 2 are equal internally...
        assert all(outcomes[2 * k] == outcomes[2 * k + 1] for k in range(20))
        # ...but the channel varies across blocks.
        assert len(set(outcomes)) > 1

    def test_block_length_one_matches_iid_marginals(self, instance):
        """L = 1 is the paper's model: per-link frequency matches Theorem 1."""
        active = np.zeros(instance.n, dtype=bool)
        active[:8] = True
        ch = BlockFadingChannel(instance, block_length=1, rng=3)
        trials = 4000
        hits = ch.run(active, BETA, trials).sum(axis=0)
        expected = success_probability(instance, active.astype(float), BETA)
        freq = hits / trials
        band = 5.0 * np.sqrt(expected * (1 - expected) / trials) + 8.0 / trials
        assert np.all(np.abs(freq - expected) <= band)

    def test_marginals_independent_of_block_length(self, instance):
        """Correlation changes joint behaviour, not per-slot marginals."""
        active = np.zeros(instance.n, dtype=bool)
        active[:8] = True
        trials = 4000
        means = []
        for L in (1, 8):
            ch = BlockFadingChannel(instance, block_length=L, rng=4)
            means.append(ch.run(active, BETA, trials).sum(axis=1).mean())
        assert means[0] == pytest.approx(means[1], abs=0.4)

    def test_works_with_other_families(self, instance):
        ch = BlockFadingChannel(
            instance, block_length=2, model=NakagamiFading(4.0), rng=5
        )
        out = ch.run(np.ones(instance.n, dtype=bool), BETA, 6)
        assert out.shape == (6, instance.n)

    def test_nofading_blocks_are_deterministic(self, instance):
        ch = BlockFadingChannel(instance, block_length=1, model=NoFading(), rng=6)
        active = np.ones(instance.n, dtype=bool)
        det = instance.successes(active, BETA)
        for _ in range(3):
            np.testing.assert_array_equal(ch.step(active, BETA), det)

    @pytest.mark.parametrize("L", [1, 3, 7])
    def test_chunked_run_bit_identical_to_stepping(self, instance, L):
        """The block-chunked ``run`` must consume randomness and produce
        outcomes exactly like a slot-by-slot ``step`` loop — including
        when the run starts mid-block."""
        active = np.zeros(instance.n, dtype=bool)
        active[:8] = True
        chunked = BlockFadingChannel(instance, block_length=L, rng=42)
        stepped = BlockFadingChannel(instance, block_length=L, rng=42)
        chunked.step(active, BETA)
        stepped.step(active, BETA)
        slots = 50
        out = chunked.run(active, BETA, slots)
        rows = np.stack([stepped.step(active, BETA) for _ in range(slots)])
        np.testing.assert_array_equal(out, rows)
        assert chunked.time == stepped.time == slots + 1

    def test_validation(self, instance):
        with pytest.raises(ValueError):
            BlockFadingChannel(instance, block_length=0)
        ch = BlockFadingChannel(instance, block_length=1, rng=7)
        with pytest.raises(ValueError):
            ch.step(np.ones(instance.n, dtype=bool), 0.0)
        with pytest.raises(ValueError):
            ch.run(np.ones(instance.n, dtype=bool), BETA, 0)
        with pytest.raises(ValueError):
            ch.transformed_step(np.full(instance.n, 0.5), BETA, repeats=0)


class TestTransformedStepUnderCorrelation:
    def test_correlation_degrades_the_transformation(self, instance):
        """The Section-4 argument needs fresh channels per repeat; with the
        whole transformed step inside one coherence block the any-of-4
        success probability drops measurably."""
        q = np.full(instance.n, 0.4)
        trials = 1500
        rates = {}
        for L in (1, 4):
            ch = BlockFadingChannel(instance, block_length=L, rng=8)
            hits = 0.0
            for _ in range(trials):
                hits += ch.transformed_step(q, BETA).sum()
            rates[L] = hits / trials
        assert rates[4] < rates[1]

    def test_silent_q_never_succeeds(self, instance):
        ch = BlockFadingChannel(instance, block_length=2, rng=9)
        out = ch.transformed_step(np.zeros(instance.n), BETA)
        assert not out.any()
