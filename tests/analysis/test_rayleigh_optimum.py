"""Tests for the numerical Rayleigh-optimum machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.rayleigh_optimum import (
    expected_capacity,
    expected_capacity_gradient,
    optimize_transmission_probabilities,
)
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.montecarlo import expected_successes_exact
from repro.geometry.placement import paper_random_network

BETA = 2.5


def random_instance(seed: int, n: int = 15) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed, area=500.0)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestObjective:
    def test_matches_theorem1_sum(self):
        inst = random_instance(0)
        q = np.random.default_rng(1).random(inst.n)
        assert expected_capacity(inst, q, BETA) == pytest.approx(
            expected_successes_exact(inst, q, BETA)
        )

    def test_multilinear_in_each_coordinate(self):
        """F is affine in every q_k: F(q with q_k=t) is linear in t."""
        inst = random_instance(2)
        gen = np.random.default_rng(3)
        q = gen.random(inst.n)
        for k in (0, inst.n - 1):
            vals = []
            for t in (0.0, 0.5, 1.0):
                qt = q.copy()
                qt[k] = t
                vals.append(expected_capacity(inst, qt, BETA))
            assert vals[1] == pytest.approx((vals[0] + vals[2]) / 2.0, rel=1e-9)


class TestGradient:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_matches_finite_differences(self, seed):
        inst = random_instance(seed, n=10)
        gen = np.random.default_rng(seed + 1)
        q = gen.uniform(0.05, 0.95, inst.n)
        grad = expected_capacity_gradient(inst, q, BETA)
        eps = 1e-6
        for k in range(inst.n):
            qp, qm = q.copy(), q.copy()
            qp[k] += eps
            qm[k] -= eps
            fd = (
                expected_capacity(inst, qp, BETA) - expected_capacity(inst, qm, BETA)
            ) / (2 * eps)
            assert grad[k] == pytest.approx(fd, abs=1e-5)

    def test_gradient_at_vertex_finite(self):
        inst = random_instance(4)
        q = np.zeros(inst.n)
        q[:3] = 1.0
        grad = expected_capacity_gradient(inst, q, BETA)
        assert np.all(np.isfinite(grad))

    def test_isolated_links_gradient_positive(self):
        """No interference, modest noise: sending more always helps."""
        inst = SINRInstance(np.diag([10.0, 10.0, 10.0]) + 1e-12, noise=0.5)
        grad = expected_capacity_gradient(inst, np.full(3, 0.5), 1.0)
        assert np.all(grad > 0)


class TestOptimizer:
    def test_returns_vertex(self):
        inst = random_instance(5)
        res = optimize_transmission_probabilities(inst, BETA, rng=0, restarts=2)
        assert set(np.unique(res.q)).issubset({0.0, 1.0})
        assert res.value == pytest.approx(expected_capacity(inst, res.q, BETA))

    def test_beats_nonfading_feasible_set_discounted(self):
        """The optimum is at least the best feasible set's Rayleigh value
        (the warm start guarantees it is examined)."""
        from repro.capacity.greedy import greedy_capacity

        inst = random_instance(6)
        chosen = greedy_capacity(inst, BETA)
        warm = np.zeros(inst.n)
        warm[chosen] = 1.0
        res = optimize_transmission_probabilities(
            inst, BETA, rng=1, restarts=2, seeds=[warm]
        )
        assert res.value >= expected_capacity(inst, warm, BETA) - 1e-9

    def test_matches_exhaustive_vertex_search_small(self):
        """F is multilinear so its box maximum is at a vertex; on tiny
        instances compare against brute force over all 2^n vertices."""
        inst = random_instance(7, n=8)
        best = 0.0
        for bits in range(1 << 8):
            q = np.array([(bits >> i) & 1 for i in range(8)], dtype=np.float64)
            best = max(best, expected_capacity(inst, q, BETA))
        res = optimize_transmission_probabilities(
            inst, BETA, rng=2, restarts=8, iterations=120
        )
        assert res.value >= best * 0.98  # ascent+rounding finds (near-)best

    def test_reproducible(self):
        inst = random_instance(8)
        a = optimize_transmission_probabilities(inst, BETA, rng=3, restarts=3)
        b = optimize_transmission_probabilities(inst, BETA, rng=3, restarts=3)
        assert a.value == b.value
        np.testing.assert_array_equal(a.q, b.q)

    def test_validation(self):
        inst = random_instance(9)
        with pytest.raises(ValueError):
            optimize_transmission_probabilities(inst, BETA, restarts=-1)
        with pytest.raises(ValueError):
            optimize_transmission_probabilities(inst, BETA, iterations=0)
        with pytest.raises(ValueError):
            optimize_transmission_probabilities(inst, 0.0)
