"""Tests for latency lower bounds — and that schedulers respect them."""

import numpy as np
import pytest

from repro.analysis.lower_bounds import (
    capacity_latency_lower_bound,
    conflict_clique_lower_bound,
    latency_lower_bound,
)
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network
from repro.latency.repeated_max import repeated_max_latency

BETA = 2.5


def random_instance(seed: int, n: int = 20) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestCapacityBound:
    def test_exact_mode_is_certified(self):
        """With the exact single-slot capacity, the bound must hold for
        the (optimal-capacity-driven) scheduler's output."""
        inst = random_instance(0, n=12)
        lb = capacity_latency_lower_bound(inst, BETA, exact=True)
        achieved = repeated_max_latency(inst, BETA).latency
        assert lb <= achieved

    def test_independent_links(self):
        s, r = line_network(5, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        assert capacity_latency_lower_bound(inst, BETA, exact=True) == 1

    def test_mutually_exclusive_links(self):
        n = 4
        inst = SINRInstance(np.full((n, n), 5.0), noise=0.0)
        assert capacity_latency_lower_bound(inst, 2.0, exact=True) == n


class TestCliqueBound:
    def test_mutually_exclusive_links(self):
        n = 5
        inst = SINRInstance(np.full((n, n), 5.0), noise=0.0)
        assert conflict_clique_lower_bound(inst, 2.0) == n

    def test_independent_links(self):
        s, r = line_network(4, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        assert conflict_clique_lower_bound(inst, BETA) == 1

    def test_mixed_instance(self):
        # Links 0/1 conflict pairwise; 2 independent of both.
        gains = np.array(
            [
                [4.0, 4.0, 0.0],
                [4.0, 4.0, 0.0],
                [0.0, 0.0, 4.0],
            ]
        )
        inst = SINRInstance(gains, noise=0.0)
        assert conflict_clique_lower_bound(inst, 1.5) == 2

    def test_asymmetric_conflict_counts(self):
        """One-directional failure already forces separate slots."""
        gains = np.array([[4.0, 8.0], [0.1, 4.0]])  # 0 kills 1, not reverse
        inst = SINRInstance(gains, noise=0.0)
        assert conflict_clique_lower_bound(inst, 1.0) == 2

    def test_noise_blocked_links_ignored(self):
        gains = np.array([[0.5, 0.0], [0.0, 100.0]])
        inst = SINRInstance(gains, noise=1.0)
        assert conflict_clique_lower_bound(inst, 2.0) == 1


class TestCombined:
    def test_schedulers_never_beat_certified_bounds(self):
        for seed in range(6):
            inst = random_instance(seed, n=12)
            lb = max(
                capacity_latency_lower_bound(inst, BETA, exact=True),
                conflict_clique_lower_bound(inst, BETA),
            )
            achieved = repeated_max_latency(inst, BETA).latency
            assert lb <= achieved

    def test_latency_lower_bound_is_max(self):
        inst = random_instance(1, n=15)
        combined = latency_lower_bound(inst, BETA, rng=0)
        assert combined >= conflict_clique_lower_bound(inst, BETA)
        assert combined >= 1
