"""Tests for graph views of SINR instances."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.graphs import affectance_digraph, conflict_graph, graph_model_gap
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network


@pytest.fixture
def pair_conflict_instance():
    gains = np.array(
        [
            [4.0, 4.0, 0.0],
            [4.0, 4.0, 0.0],
            [0.0, 0.0, 4.0],
        ]
    )
    return SINRInstance(gains, noise=0.0)


class TestConflictGraph:
    def test_edges_match_pairwise_semantics(self, pair_conflict_instance):
        g = conflict_graph(pair_conflict_instance, beta=1.5)
        assert set(g.edges()) == {(0, 1)}
        assert g.number_of_nodes() == 3

    def test_isolated_links_edgeless(self):
        s, r = line_network(5, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        assert conflict_graph(inst, 2.5).number_of_edges() == 0

    def test_asymmetric_failure_still_an_edge(self):
        gains = np.array([[4.0, 8.0], [0.1, 4.0]])
        inst = SINRInstance(gains, noise=0.0)
        assert set(conflict_graph(inst, 1.0).edges()) == {(0, 1)}

    def test_clique_number_matches_lower_bound_module(self):
        from repro.analysis.lower_bounds import conflict_clique_lower_bound

        n = 5
        inst = SINRInstance(np.full((n, n), 5.0), noise=0.0)
        g = conflict_graph(inst, 2.0)
        # Full conflict: the graph is complete and max clique = n.
        assert nx.graph_clique_number(g) if hasattr(nx, "graph_clique_number") else max(
            len(c) for c in nx.find_cliques(g)
        ) == n
        assert conflict_clique_lower_bound(inst, 2.0) == n


class TestAffectanceDigraph:
    def test_weights_match_matrix(self, paper_instance):
        from repro.core.affectance import affectance_matrix

        d = affectance_digraph(paper_instance, 2.5, threshold=0.01)
        a = affectance_matrix(paper_instance, 2.5, clamped=True)
        for j, i, data in d.edges(data=True):
            assert data["weight"] == pytest.approx(a[j, i])
            assert a[j, i] > 0.01

    def test_threshold_filters(self, paper_instance):
        loose = affectance_digraph(paper_instance, 2.5, threshold=0.0)
        tight = affectance_digraph(paper_instance, 2.5, threshold=0.1)
        assert tight.number_of_edges() <= loose.number_of_edges()

    def test_validation(self, paper_instance):
        with pytest.raises(ValueError):
            affectance_digraph(paper_instance, 2.5, threshold=-0.1)


class TestGraphModelGap:
    def test_zero_on_isolated_links(self):
        s, r = line_network(5, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 0.0)
        assert graph_model_gap(inst, 2.5, rng=0) == 0.0

    def test_large_on_dense_instances(self):
        """Dense deployments: pairwise compatibility says everyone can
        talk; aggregate SINR says no.  The gap should be substantial —
        the paper's motivation for SINR models, measured."""
        s, r = paper_random_network(40, rng=1, area=500.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)
        assert graph_model_gap(inst, 2.5, rng=2, num_samples=100) > 0.5

    def test_validation(self, paper_instance):
        with pytest.raises(ValueError):
            graph_model_gap(paper_instance, 2.5, num_samples=0)
