"""Tests for the measured optimum gap."""

import numpy as np
import pytest

from repro.analysis.model_gap import measured_optimum_gap
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import line_network, paper_random_network

BETA = 2.5


def random_instance(seed: int, n: int = 15) -> SINRInstance:
    s, r = paper_random_network(n, rng=seed, area=500.0)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestMeasuredGap:
    def test_ratio_at_least_one_over_e(self):
        """The warm start guarantees OPT^R >= (1/e)·OPT^nf measured."""
        for seed in range(5):
            gap = measured_optimum_gap(random_instance(seed), BETA, rng=seed)
            assert gap.ratio >= np.exp(-1.0) - 1e-9

    def test_isolated_links_ratio_near_one(self):
        """No interference, tiny noise: both optima are ~n."""
        s, r = line_network(6, spacing=10000.0, link_length=5.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 1e-9)
        gap = measured_optimum_gap(inst, BETA, rng=0)
        assert gap.nonfading_value == 6
        assert gap.ratio == pytest.approx(1.0, abs=0.01)

    def test_exact_mode_small_instance(self):
        inst = random_instance(3, n=10)
        gap = measured_optimum_gap(inst, BETA, rng=1, exact=True)
        from repro.capacity.optimum import optimal_capacity_bruteforce

        assert gap.nonfading_value == optimal_capacity_bruteforce(inst, BETA).size

    def test_q_is_valid_probability_vector(self):
        gap = measured_optimum_gap(random_instance(4), BETA, rng=2)
        assert np.all((gap.rayleigh_q >= 0) & (gap.rayleigh_q <= 1))

    def test_nan_ratio_when_nothing_feasible(self):
        """All links noise-blocked: OPT^nf = 0 → ratio NaN, no crash."""
        gains = np.eye(2) * 0.5 + 0.01
        inst = SINRInstance(gains, noise=10.0)
        gap = measured_optimum_gap(inst, 1.0, rng=3)
        assert gap.nonfading_value == 0
        assert np.isnan(gap.ratio)
