"""Tests for instance/network persistence."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.metric import PNormMetric
from repro.geometry.placement import paper_random_network
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_network,
    network_from_dict,
    network_to_dict,
    save_instance,
    save_network,
)


class TestNetworkRoundTrip:
    def test_geometric_exact(self, tmp_path):
        s, r = paper_random_network(12, rng=0)
        net = Network(s, r)
        path = tmp_path / "net.json"
        save_network(net, path)
        back = load_network(path)
        np.testing.assert_array_equal(back.senders, net.senders)
        np.testing.assert_array_equal(back.receivers, net.receivers)
        np.testing.assert_array_equal(back.cross_distances, net.cross_distances)

    def test_pnorm_metric_preserved(self, tmp_path):
        s, r = paper_random_network(5, rng=1)
        net = Network(s, r, metric=PNormMetric(1.0))
        path = tmp_path / "net.json"
        save_network(net, path)
        back = load_network(path)
        assert back.metric.p == 1.0
        np.testing.assert_array_equal(back.lengths, net.lengths)

    def test_matrix_network(self, tmp_path):
        D = np.array([[1.0, 5.25], [4.125, 2.0]])
        net = Network.from_distance_matrix(D)
        path = tmp_path / "net.json"
        save_network(net, path)
        back = load_network(path)
        assert not back.is_geometric
        np.testing.assert_array_equal(back.cross_distances, net.cross_distances)

    def test_file_is_json(self, tmp_path):
        s, r = paper_random_network(3, rng=2)
        path = tmp_path / "net.json"
        save_network(Network(s, r), path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-network"

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_roundtrip_property(self, seed):
        s, r = paper_random_network(6, rng=seed)
        net = Network(s, r)
        back = network_from_dict(network_to_dict(net))
        np.testing.assert_array_equal(back.cross_distances, net.cross_distances)


class TestInstanceRoundTrip:
    def test_exact(self, tmp_path):
        s, r = paper_random_network(10, rng=3)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        back = load_instance(path)
        np.testing.assert_array_equal(back.gains, inst.gains)
        assert back.noise == inst.noise

    def test_zero_noise(self):
        inst = SINRInstance(np.eye(2) + 0.5, noise=0.0)
        back = instance_from_dict(instance_to_dict(inst))
        assert back.noise == 0.0

    def test_subnormal_and_extreme_values_roundtrip(self):
        gains = np.array([[1e-300, 1e300], [5e-324, 1.0]])
        gains[np.diag_indices(2)] = [1e-300, 1.0]
        inst = SINRInstance(gains, noise=1e-308)
        back = instance_from_dict(instance_to_dict(inst))
        np.testing.assert_array_equal(back.gains, inst.gains)
        assert back.noise == inst.noise


class TestVersion1Compatibility:
    """Version-1 files (one hex-float string per value) must keep loading."""

    @staticmethod
    def _v1_array(arr):
        a = np.asarray(arr, dtype=np.float64)
        return {"shape": list(a.shape), "hex": [float(v).hex() for v in a.ravel()]}

    def test_v1_instance_document_loads(self):
        gains = np.array([[4.0, 1.0], [2.0, 8.0]])
        doc = {
            "format": "repro-instance",
            "version": 1,
            "gains": self._v1_array(gains),
            "noise": 0.5,
        }
        back = instance_from_dict(doc)
        np.testing.assert_array_equal(back.gains, gains)
        assert back.noise == 0.5

    def test_v1_geometric_network_document_loads(self):
        s, r = paper_random_network(4, rng=6)
        doc = {
            "format": "repro-network",
            "version": 1,
            "kind": "geometric",
            "senders": self._v1_array(s),
            "receivers": self._v1_array(r),
            "metric_p": 2.0,
        }
        back = network_from_dict(doc)
        np.testing.assert_array_equal(back.senders, s)
        np.testing.assert_array_equal(back.receivers, r)

    def test_v1_preserves_extreme_values(self):
        gains = np.array([[1e-300, 1e300], [5e-324, 1.0]])
        doc = {
            "format": "repro-instance",
            "version": 1,
            "gains": self._v1_array(gains),
            "noise": 1e-308,
        }
        np.testing.assert_array_equal(instance_from_dict(doc).gains, gains)

    def test_writer_emits_v2(self):
        inst = SINRInstance(np.eye(2) + 0.5, noise=0.0)
        doc = instance_to_dict(inst)
        assert doc["version"] == 2
        assert "b64" in doc["gains"] and "hex" not in doc["gains"]

    def test_payload_size_mismatch_rejected(self):
        doc = instance_to_dict(SINRInstance(np.eye(2) + 0.5, noise=0.0))
        doc["gains"]["shape"] = [3, 3]
        with pytest.raises(ValueError, match="shape"):
            instance_from_dict(doc)

    def test_missing_payload_rejected(self):
        doc = instance_to_dict(SINRInstance(np.eye(2) + 0.5, noise=0.0))
        del doc["gains"]["b64"]
        with pytest.raises(ValueError, match="neither"):
            instance_from_dict(doc)


class TestFormatErrors:
    def test_wrong_format_tag(self):
        with pytest.raises(ValueError):
            network_from_dict({"format": "something-else"})
        with pytest.raises(ValueError):
            instance_from_dict({"format": "repro-network"})

    def test_wrong_version(self):
        s, r = paper_random_network(3, rng=4)
        doc = network_to_dict(Network(s, r))
        doc["version"] = 999
        with pytest.raises(ValueError):
            network_from_dict(doc)

    def test_unknown_kind(self):
        s, r = paper_random_network(3, rng=5)
        doc = network_to_dict(Network(s, r))
        doc["kind"] = "hologram"
        with pytest.raises(ValueError):
            network_from_dict(doc)
