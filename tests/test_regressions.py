"""Regression tests for bugs found and fixed during development.

Each test documents the failure mode it guards against; if one of these
fires again, the fix regressed.
"""

import numpy as np
import pytest

from repro.capacity.optimum import local_search_capacity, optimal_capacity_bruteforce
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.geometry.placement import paper_random_network


class TestLocalSearchDuplicates:
    """Bug: the improvement pass iterated a stale 'outside' list and could
    re-insert a link added earlier in the same pass, returning a multiset
    like [2, 2, 3, 4, 6, 6, 9] whose 'size' beat the true optimum."""

    def test_no_duplicates_ever(self):
        for seed in range(15):
            s, r = paper_random_network(11, rng=seed, area=300.0)
            inst = SINRInstance.from_network(
                Network(s, r), UniformPower(2.0), 2.2, 4e-7
            )
            out = local_search_capacity(inst, 2.5, rng=seed + 1, restarts=8)
            assert len(set(out.tolist())) == out.size

    def test_original_failing_seed(self):
        """Seed 17 of the discovery run: LS claimed 7 > exact 6."""
        s, r = paper_random_network(11, rng=17, area=300.0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)
        exact = optimal_capacity_bruteforce(inst, 2.5).size
        ls = local_search_capacity(inst, 2.5, rng=18, restarts=12)
        assert ls.size <= exact
        assert inst.is_feasible(ls, 2.5)


class TestBranchAndBoundNonlocal:
    """Bug: the recursive closure mutated `incoming` via augmented
    assignment without a `nonlocal` declaration → UnboundLocalError on
    every instance with at least one feasible candidate."""

    def test_bb_runs_on_ordinary_instance(self):
        s, r = paper_random_network(10, rng=0)
        inst = SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)
        out = optimal_capacity_bruteforce(inst, 2.5)
        assert out.size >= 1


class TestBlockedLinkInfArithmetic:
    """Bug: noise-blocked links put +inf into the affectance matrix; the
    B&B's incremental add/subtract then produced inf - inf = NaN and
    RuntimeWarnings.  Blocked columns are now zeroed (those links are
    never candidates)."""

    def test_no_warnings_and_correct_answer(self):
        gains = np.array([[1.0, 0.2], [0.2, 100.0]])
        inst = SINRInstance(gains, noise=1.0)  # link 0 blocked at beta=2
        with np.errstate(invalid="raise"):
            out = optimal_capacity_bruteforce(inst, 2.0)
        assert out.tolist() == [1]


class TestActivePatternAmbiguity:
    """Bug: integer arrays like [0, 1] were heuristically interpreted as
    masks when max <= 1, silently flipping semantics.  Integer arrays are
    now always index lists."""

    def test_zero_one_index_list(self, two_link_instance):
        # [0, 1] means "links 0 and 1 transmit", not the mask (F, T).
        via_indices = two_link_instance.sinr(np.array([0, 1]))
        via_mask = two_link_instance.sinr(np.array([True, True]))
        np.testing.assert_allclose(via_indices, via_mask)

    def test_out_of_range_index_raises(self, two_link_instance):
        with pytest.raises(IndexError):
            two_link_instance.sinr(np.array([5]))

    def test_float_pattern_rejected(self, two_link_instance):
        with pytest.raises(TypeError):
            two_link_instance.sinr(np.array([0.5, 0.5]))


class TestAdaptiveAlohaAirTime:
    """Bug: in adaptive mode, a phase that hit its step budget was thrown
    away without counting the slots it burned, understating latency."""

    def test_failed_phase_slots_counted(self):
        from repro.latency.aloha import aloha_latency

        # Mutually destructive links: only a lone transmitter succeeds,
        # so high-probability phases with a small step budget must fail.
        n = 6
        inst = SINRInstance(np.full((n, n), 5.0), noise=0.0)
        result = aloha_latency(
            inst, 2.0, rng=4, q="adaptive", max_steps_factor=0.2
        )
        # At least one phase failed (probability was halved)...
        assert result.q_used < 0.5
        # ...and the failed phases' slots are part of the total: the
        # schedule must be longer than the final phase alone could be if
        # earlier phases were (wrongly) discarded with zero cost.
        first_budget = int(0.2 * n / 0.5)
        assert result.latency > first_budget
        assert result.schedule.length == result.latency


class TestShapeChecksNeedPaperDensity:
    """Bug (experiment-design level): Figure-1 shape checks failed on
    small test networks because shrinking n at fixed area changes link
    *density*, which is what drives every interference shape.  Scaled-
    down configurations must scale area with sqrt(n)."""

    def test_density_preserved_config_reproduces_crossover(self):
        from repro.experiments import Figure1Config, run_figure1

        cfg = Figure1Config(
            num_networks=3,
            num_links=40,
            area=1000.0 * (40 / 100) ** 0.5,
            num_transmit_seeds=6,
            probabilities=(0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
        )
        res = run_figure1(cfg)
        assert res.checks["uniform: curves cross"]
