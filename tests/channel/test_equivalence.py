"""Cross-channel equivalences: every member agrees where the laws coincide.

The channel layer's whole point is that consumers can swap models; these
tests pin the places where two members must produce the *same* answer —
deterministically (non-fading vs the raw SINR test, game string vs
channel object) or in distribution (Rayleigh sampling vs Theorem 1,
Nakagami ``m = 1`` vs the exact Rayleigh channel).
"""

import numpy as np
import pytest

from repro.channel import (
    MonteCarloChannel,
    NonFadingChannel,
    RayleighChannel,
)
from repro.fading.models import NakagamiFading
from repro.fading.success import success_probability_conditional
from repro.learning.game import CapacityGame
from repro.transform.blackbox import rayleigh_expected_binary

BETA = 1.0


class TestNonFadingMatchesInstance:
    """NonFadingChannel.realize ≡ SINRInstance.successes, exactly."""

    def test_realize_equals_successes(self, paper_instance, rng):
        ch = NonFadingChannel(paper_instance, BETA)
        for _ in range(20):
            mask = rng.random(paper_instance.n) < 0.4
            np.testing.assert_array_equal(
                ch.realize(mask), paper_instance.successes(mask, BETA)
            )

    def test_realize_batch_equals_rowwise(self, paper_instance, rng):
        ch = NonFadingChannel(paper_instance, BETA)
        patterns = rng.random((50, paper_instance.n)) < 0.3
        batch = ch.realize_batch(patterns)
        rows = np.stack([paper_instance.successes(p, BETA) for p in patterns])
        np.testing.assert_array_equal(batch, rows)

    def test_counterfactual_agrees_with_senders(self, paper_instance, rng):
        """For links that did send, the counterfactual IS the outcome."""
        ch = NonFadingChannel(paper_instance, BETA)
        mask = rng.random(paper_instance.n) < 0.5
        ok = ch.realize(mask)
        cf = ch.counterfactual(mask)
        np.testing.assert_array_equal(cf[mask], ok[mask])

    def test_deterministic_consumes_no_rng(self, paper_instance):
        ch = NonFadingChannel(paper_instance, BETA)
        gen = np.random.default_rng(7)
        ch.realize(np.ones(paper_instance.n, dtype=bool), gen)
        # An untouched generator produces the same stream afterwards.
        assert gen.random() == np.random.default_rng(7).random()


class TestRayleighMatchesTheorem1:
    """Sampled success frequencies sit within 3σ of the closed form."""

    SLOTS = 4000

    def test_realize_frequency_within_3_sigma(self, paper_instance):
        n = paper_instance.n
        gen = np.random.default_rng(20120625)
        mask = np.zeros(n, dtype=bool)
        mask[:: max(1, n // 12)] = True  # a sparse pattern with real successes
        ch = RayleighChannel(paper_instance, BETA)
        p_exact = np.where(
            mask,
            success_probability_conditional(paper_instance, mask.astype(float), BETA),
            0.0,
        )
        hits = np.zeros(n)
        for _ in range(self.SLOTS):
            hits += ch.realize(mask, gen)
        freq = hits / self.SLOTS
        sigma = np.sqrt(np.maximum(p_exact * (1 - p_exact), 1e-12) / self.SLOTS)
        assert np.all(np.abs(freq - p_exact) <= 3.0 * sigma + 1e-9)

    def test_realize_batch_same_law(self, paper_instance):
        n = paper_instance.n
        gen = np.random.default_rng(4)
        mask = np.zeros(n, dtype=bool)
        mask[:: max(1, n // 12)] = True
        ch = RayleighChannel(paper_instance, BETA)
        patterns = np.broadcast_to(mask, (self.SLOTS, n))
        freq = ch.realize_batch(np.ascontiguousarray(patterns), gen).mean(axis=0)
        p_exact = np.where(
            mask,
            success_probability_conditional(paper_instance, mask.astype(float), BETA),
            0.0,
        )
        sigma = np.sqrt(np.maximum(p_exact * (1 - p_exact), 1e-12) / self.SLOTS)
        assert np.all(np.abs(freq - p_exact) <= 3.0 * sigma + 1e-9)

    def test_expected_successes_matches_transform_helper(self, paper_instance):
        chosen = np.arange(0, paper_instance.n, 3)
        ch = RayleighChannel(paper_instance, BETA)
        assert ch.expected_successes(chosen) == pytest.approx(
            rayleigh_expected_binary(paper_instance, chosen, BETA)
        )


class TestNakagami1IsRayleigh:
    """Nakagami with ``m = 1`` *is* Rayleigh; the MC channel must agree
    with the exact channel's closed form statistically."""

    SLOTS = 4000

    def test_marginal_frequencies_match_closed_form(self, paper_instance):
        n = paper_instance.n
        gen = np.random.default_rng(99)
        mask = np.zeros(n, dtype=bool)
        mask[:: max(1, n // 10)] = True
        mc = MonteCarloChannel(paper_instance, BETA, NakagamiFading(1.0))
        patterns = np.ascontiguousarray(np.broadcast_to(mask, (self.SLOTS, n)))
        freq = mc.realize_batch(patterns, gen).mean(axis=0)
        p_exact = np.where(
            mask,
            success_probability_conditional(paper_instance, mask.astype(float), BETA),
            0.0,
        )
        sigma = np.sqrt(np.maximum(p_exact * (1 - p_exact), 1e-12) / self.SLOTS)
        assert np.all(np.abs(freq - p_exact) <= 4.0 * sigma + 1e-9)

    def test_success_probability_estimator_tracks_exact(self, paper_instance):
        q = np.full(paper_instance.n, 0.25)
        mc = MonteCarloChannel(paper_instance, BETA, NakagamiFading(1.0), mc_slots=4000)
        exact = RayleighChannel(paper_instance, BETA).success_probability(q)
        est = mc.success_probability(q, np.random.default_rng(5))
        sigma = np.sqrt(np.maximum(exact * (1 - exact), 1e-12) / 4000)
        assert np.all(np.abs(est - exact) <= 4.0 * sigma + 5e-3)


class TestGameStringVsChannel:
    """CapacityGame(model=str) and CapacityGame(channel=Channel) are the
    same game, byte for byte, at a fixed seed."""

    @pytest.mark.parametrize("model", ["nonfading", "rayleigh"])
    def test_identical_game_result(self, paper_instance, model):
        kind = {"nonfading": NonFadingChannel, "rayleigh": RayleighChannel}[model]
        res_str = CapacityGame(paper_instance, BETA, model=model, rng=42).play(60)
        res_ch = CapacityGame(
            paper_instance, BETA, channel=kind(paper_instance, BETA), rng=42
        ).play(60)
        np.testing.assert_array_equal(res_str.actions, res_ch.actions)
        np.testing.assert_array_equal(res_str.send_success, res_ch.send_success)
        np.testing.assert_array_equal(res_str.success_counts, res_ch.success_counts)
        assert res_str.model == res_ch.model

    def test_spec_string_channel_also_identical(self, paper_instance):
        res_model = CapacityGame(paper_instance, BETA, model="rayleigh", rng=3).play(40)
        res_spec = CapacityGame(paper_instance, BETA, channel="rayleigh", rng=3).play(40)
        np.testing.assert_array_equal(res_model.actions, res_spec.actions)
        np.testing.assert_array_equal(res_model.send_success, res_spec.send_success)

    def test_beta_mismatch_rejected(self, paper_instance):
        ch = RayleighChannel(paper_instance, 2.0)
        with pytest.raises(ValueError, match="threshold"):
            CapacityGame(paper_instance, BETA, channel=ch, rng=0)
