"""Cached and batched hot paths must agree with their per-call forms.

The perf work of this layer caches derived tensors (Theorem-1 log
factors, the non-fading ``β·S̄`` margin test) and adds batched
counterfactual kernels.  These tests pin the contract: exact kernels are
byte-identical to the per-call path; sampled kernels either consume the
identical random stream (and so match exactly under a fixed seed) or are
checked statistically where only the marginal law is preserved.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import (
    BlockFadingChannel,
    MonteCarloChannel,
    NonFadingChannel,
    RayleighChannel,
)
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.models import NakagamiFading
from repro.fading.success import (
    Theorem1Kernel,
    success_probability_conditional,
    success_probability_conditional_batch,
)
from repro.geometry.placement import paper_random_network

N = 24
BETA = 2.0
BATCH = 64


@pytest.fixture(scope="module")
def instance() -> SINRInstance:
    s, r = paper_random_network(N, rng=11)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


@pytest.fixture()
def patterns() -> np.ndarray:
    return np.random.default_rng(5).random((BATCH, N)) < 0.4


class TestTheorem1KernelCache:
    def test_conditional_matches_module_function(self, instance):
        q = np.random.default_rng(0).random(N)
        kern = Theorem1Kernel(instance, BETA)
        np.testing.assert_array_equal(
            kern.conditional(q), success_probability_conditional(instance, q, BETA)
        )

    def test_cached_tensors_are_reused(self, instance):
        kern = Theorem1Kernel(instance, BETA)
        assert kern.log_factors is kern.log_factors
        assert kern.weights is kern.weights

    def test_binary_path_matches_product_path(self, instance):
        mask = np.random.default_rng(1).random(N) < 0.5
        kern = Theorem1Kernel(instance, BETA)
        np.testing.assert_allclose(
            kern.conditional_binary(mask),
            kern.conditional(mask.astype(np.float64)),
            rtol=1e-12,
        )

    def test_batch_matches_per_row(self, instance, patterns):
        batch = success_probability_conditional_batch(instance, patterns, BETA)
        kern = Theorem1Kernel(instance, BETA)
        for t in range(BATCH):
            np.testing.assert_allclose(
                batch[t], kern.conditional_binary(patterns[t]), rtol=1e-12
            )


class TestNonFadingBatch:
    def test_counterfactual_matches_division_form(self, instance):
        """The cached margin test must equal the per-call SINR division."""
        ch = NonFadingChannel(instance, BETA)
        gen = np.random.default_rng(2)
        for _ in range(20):
            mask = gen.random(N) < 0.5
            diag = instance.signal
            interference = mask.astype(np.float64) @ instance.gains - mask * diag
            denom = interference + instance.noise
            with np.errstate(divide="ignore"):
                sinr = np.where(
                    denom > 0.0, diag / np.maximum(denom, 1e-300), np.inf
                )
            np.testing.assert_array_equal(ch.counterfactual(mask), sinr >= BETA)

    def test_counterfactual_batch_matches_loop(self, instance, patterns):
        ch = NonFadingChannel(instance, BETA)
        batch = ch.counterfactual_batch(patterns)
        rows = np.stack([ch.counterfactual(p) for p in patterns])
        np.testing.assert_array_equal(batch, rows)


class TestRayleighBatch:
    def test_realize_batch_matches_loop_stream(self, instance, patterns):
        """Batch and loop consume the same uniforms in the same order."""
        ch = RayleighChannel(instance, BETA)
        batch = ch.realize_batch(patterns, np.random.default_rng(7))
        gen = np.random.default_rng(7)
        rows = np.stack([ch.realize(p, gen) for p in patterns])
        np.testing.assert_array_equal(batch, rows)

    def test_counterfactual_batch_matches_loop_stream(self, instance, patterns):
        ch = RayleighChannel(instance, BETA)
        batch = ch.counterfactual_batch(patterns, np.random.default_rng(8))
        gen = np.random.default_rng(8)
        rows = np.stack([ch.counterfactual(p, gen) for p in patterns])
        np.testing.assert_array_equal(batch, rows)

    def test_cached_channel_matches_fresh_channel(self, instance):
        """A long-lived channel (warm cache) and per-call fresh channels
        (cold cache) must produce identical realisations."""
        warm = RayleighChannel(instance, BETA)
        gen_a = np.random.default_rng(9)
        gen_b = np.random.default_rng(9)
        mask = np.random.default_rng(10).random(N) < 0.5
        for _ in range(10):
            a = warm.realize(mask, gen_a)
            b = RayleighChannel(instance, BETA).realize(mask, gen_b)
            np.testing.assert_array_equal(a, b)


class TestMonteCarloBatch:
    def test_counterfactual_batch_marginals(self, instance):
        """The CRN batch kernel preserves per-link marginals (the joint
        within-slot law differs by design)."""
        ch = MonteCarloChannel(instance, BETA, NakagamiFading(2.0))
        mask = np.zeros(N, dtype=bool)
        mask[: N // 2] = True
        slots = 4000
        pats = np.broadcast_to(mask, (slots, N))
        batch_freq = ch.counterfactual_batch(
            pats, np.random.default_rng(12)
        ).mean(axis=0)
        gen = np.random.default_rng(13)
        loop_freq = np.stack(
            [ch.counterfactual(mask, gen) for _ in range(slots)]
        ).mean(axis=0)
        sigma = np.sqrt(np.maximum(loop_freq * (1 - loop_freq), 1e-4) / slots)
        assert np.all(np.abs(batch_freq - loop_freq) < 5 * sigma)


class TestBlockFadingBatch:
    @pytest.mark.parametrize("L", [1, 3, 8])
    def test_realize_batch_bit_identical_to_loop(self, instance, patterns, L):
        a = BlockFadingChannel(instance, BETA, block_length=L)
        b = BlockFadingChannel(instance, BETA, block_length=L)
        batch = a.realize_batch(patterns, np.random.default_rng(14))
        gen = np.random.default_rng(14)
        rows = np.stack([b.realize(p, gen) for p in patterns])
        np.testing.assert_array_equal(batch, rows)
        assert a.time == b.time == BATCH

    @pytest.mark.parametrize("L", [1, 3, 8])
    def test_counterfactual_batch_bit_identical_to_loop(
        self, instance, patterns, L
    ):
        a = BlockFadingChannel(instance, BETA, block_length=L)
        b = BlockFadingChannel(instance, BETA, block_length=L)
        batch = a.counterfactual_batch(patterns, np.random.default_rng(15))
        gen = np.random.default_rng(15)
        rows = np.stack([b.counterfactual(p, gen) for p in patterns])
        np.testing.assert_array_equal(batch, rows)

    def test_chunks_respect_mid_block_start(self, instance, patterns):
        """A batch starting mid-block must reuse the live draw until the
        boundary, exactly like stepping would."""
        L = 5
        a = BlockFadingChannel(instance, BETA, block_length=L)
        b = BlockFadingChannel(instance, BETA, block_length=L)
        gen_a = np.random.default_rng(16)
        gen_b = np.random.default_rng(16)
        for p in patterns[:3]:
            a.realize(p, gen_a)
            b.realize(p, gen_b)
        batch = a.realize_batch(patterns[3:], gen_a)
        rows = np.stack([b.realize(p, gen_b) for p in patterns[3:]])
        np.testing.assert_array_equal(batch, rows)


class TestBaseFallbacks:
    def _stripped_channel(self, instance):
        """A channel exercising only the ABC's default batch fallbacks."""

        class Stripped(RayleighChannel):
            def realize_batch(self, patterns, rng=None):
                return super(RayleighChannel, self).realize_batch(patterns, rng)

            def counterfactual_batch(self, patterns, rng=None):
                return super(RayleighChannel, self).counterfactual_batch(
                    patterns, rng
                )

            def sinr_batch(self, patterns, rng=None):
                return None

        return Stripped(instance, BETA)

    def test_realize_fallback_uses_single_spawned_stream(self, instance, patterns):
        """The documented order: one child stream, rows realized in order."""
        ch = self._stripped_channel(instance)
        out = ch.realize_batch(patterns, np.random.default_rng(17))
        stream = np.random.default_rng(17).spawn(1)[0]
        rows = np.stack([ch.realize(p, stream) for p in patterns])
        np.testing.assert_array_equal(out, rows)

    def test_realize_fallback_advances_parent_once(self, instance, patterns):
        """The caller's generator advances by exactly one spawn, however
        large the batch is."""
        gen = np.random.default_rng(18)
        self._stripped_channel(instance).realize_batch(patterns, gen)
        probe = gen.random()
        ref = np.random.default_rng(18)
        ref.spawn(1)
        assert probe == ref.random()

    def test_counterfactual_fallback_loops_callers_generator(
        self, instance, patterns
    ):
        ch = self._stripped_channel(instance)
        out = ch.counterfactual_batch(patterns, np.random.default_rng(19))
        gen = np.random.default_rng(19)
        rows = np.stack([ch.counterfactual(p, gen) for p in patterns])
        np.testing.assert_array_equal(out, rows)
