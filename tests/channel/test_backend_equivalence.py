"""Backend-mode equivalence across the whole channel family.

The array-backend layer makes three promises, pinned here for every
member of the channel family (non-fading, Rayleigh/Theorem-1,
Monte-Carlo, block-fading):

1. **Default byte-identity** — under ``BackendConfig()`` every routed
   kernel computes the exact NumPy float64 expression it computed before
   the shim existed (checked against hand-written reference forms).
2. **float32 tolerance** — deterministic outputs track the float64
   reference within the documented ``DTYPE_RTOL``; boolean realisations
   under a shared seed flip only where a probability sits within
   round-off of the drawn uniform (a vanishing fraction).
3. **top-k convergence** — ``k >= n - 1`` reproduces the dense result
   exactly (the operator *is* dense then); realistic ``k`` keeps the
   boolean disagreement against dense small, and the approximation is
   one-sided in the conservative direction (dropping interferers can
   only raise success probabilities).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import backend
from repro.backend import DTYPE_RTOL, BackendConfig, backend_scope
from repro.channel import (
    BlockFadingChannel,
    MonteCarloChannel,
    NonFadingChannel,
    RayleighChannel,
)
from repro.core.network import Network
from repro.core.power import UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.models import NakagamiFading
from repro.fading.success import Theorem1Kernel
from repro.geometry.placement import paper_random_network

N = 40
BETA = 2.0
BATCH = 64
TOPK = 8

#: Observed boolean disagreement fractions at (N, TOPK): float32 flips
#: essentially nothing; dropping all but 8 of 39 interferers flips a few
#: percent of decisions.  The bounds leave headroom over measurements
#: (0.0 and ~0.05 respectively) without being vacuous.
FLOAT32_FLIP_BUDGET = 0.02
TOPK_FLIP_BUDGET = 0.15

CHANNELS = ["nonfading", "rayleigh", "montecarlo", "block"]


@pytest.fixture(autouse=True)
def _restore_backend_config():
    previous = backend.get_config()
    yield
    backend.set_config(previous)


@pytest.fixture(scope="module")
def instance() -> SINRInstance:
    s, r = paper_random_network(N, rng=21)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


@pytest.fixture()
def patterns() -> np.ndarray:
    return np.random.default_rng(5).random((BATCH, N)) < 0.4


def _make_channel(name: str, instance: SINRInstance):
    if name == "nonfading":
        return NonFadingChannel(instance, BETA)
    if name == "rayleigh":
        return RayleighChannel(instance, BETA)
    if name == "montecarlo":
        return MonteCarloChannel(instance, BETA, NakagamiFading(2.0))
    if name == "block":
        return BlockFadingChannel(instance, BETA, block_length=4)
    raise AssertionError(name)


def _counterfactual(name: str, instance: SINRInstance, patterns: np.ndarray):
    """One deterministic-seed counterfactual batch under the active config.

    A fresh channel per call: operator caches are per-object, so reusing
    one channel across configs would test the cache keying instead of
    the math (the keying has its own assertions below).
    """
    ch = _make_channel(name, instance)
    return ch.counterfactual_batch(patterns, np.random.default_rng(77))


def _realize(name: str, instance: SINRInstance, patterns: np.ndarray):
    ch = _make_channel(name, instance)
    return ch.realize_batch(patterns, np.random.default_rng(78))


class TestDefaultByteIdentity:
    """The default config must reproduce the pre-shim expressions exactly."""

    def test_dense_operator_product_is_plain_matmul(self, instance, patterns):
        op = instance.gains_operator(keep_diagonal=True)
        x = patterns.astype(np.float64)
        assert op.matmul(x).tobytes() == (x @ instance.gains).tobytes()

    def test_theorem1_batch_is_the_exact_log_sum(self, instance, patterns):
        kern = Theorem1Kernel(instance, BETA)
        expected = np.exp(
            patterns.astype(np.float64) @ kern.log_factors
            - BETA * instance.noise / instance.signal
        )
        assert kern.conditional_batch(patterns).tobytes() == expected.tobytes()

    def test_nonfading_counterfactual_is_the_exact_division_form(
        self, instance, patterns
    ):
        ch = NonFadingChannel(instance, BETA)
        diag = instance.signal
        for mask in patterns[:16]:
            interference = mask.astype(np.float64) @ instance.gains - mask * diag
            denom = interference + instance.noise
            with np.errstate(divide="ignore"):
                sinr = np.where(
                    denom > 0.0, diag / np.maximum(denom, 1e-300), np.inf
                )
            np.testing.assert_array_equal(ch.counterfactual(mask), sinr >= BETA)

    @pytest.mark.parametrize("name", CHANNELS)
    def test_explicit_default_scope_changes_nothing(
        self, instance, patterns, name
    ):
        """Entering (and leaving) non-default scopes must not perturb the
        default path — operator caches are keyed by config."""
        ch = _make_channel(name, instance)
        before = ch.counterfactual_batch(patterns, np.random.default_rng(9))
        with backend_scope(BackendConfig(dtype="float32", topk=TOPK)):
            ch.counterfactual_batch(patterns, np.random.default_rng(9))
        after = ch.counterfactual_batch(patterns, np.random.default_rng(9))
        np.testing.assert_array_equal(before, after)


class TestFloat32Tolerance:
    def test_theorem1_probabilities_within_documented_rtol(
        self, instance, patterns
    ):
        ref = Theorem1Kernel(instance, BETA).conditional_batch(patterns)
        with backend_scope(BackendConfig(dtype="float32")):
            got = Theorem1Kernel(instance, BETA).conditional_batch(patterns)
        np.testing.assert_allclose(
            got, ref, rtol=DTYPE_RTOL["float32"], atol=1e-6
        )

    def test_fractional_q_within_documented_rtol(self, instance):
        q = np.random.default_rng(3).random(N)
        ref = Theorem1Kernel(instance, BETA).conditional(q)
        with backend_scope(BackendConfig(dtype="float32")):
            got = Theorem1Kernel(instance, BETA).conditional(q)
        np.testing.assert_allclose(
            got, ref, rtol=DTYPE_RTOL["float32"], atol=1e-6
        )

    @pytest.mark.parametrize("name", CHANNELS)
    def test_counterfactual_decisions_barely_flip(
        self, instance, patterns, name
    ):
        ref = _counterfactual(name, instance, patterns)
        with backend_scope(BackendConfig(dtype="float32")):
            got = _counterfactual(name, instance, patterns)
        assert np.mean(got != ref) <= FLOAT32_FLIP_BUDGET

    @pytest.mark.parametrize("name", CHANNELS)
    def test_realizations_barely_flip(self, instance, patterns, name):
        ref = _realize(name, instance, patterns)
        with backend_scope(BackendConfig(dtype="float32")):
            got = _realize(name, instance, patterns)
        assert np.mean(got != ref) <= FLOAT32_FLIP_BUDGET


class TestTopKEquivalence:
    def test_full_k_is_exactly_dense(self, instance, patterns):
        """``topk >= n - 1`` keeps every interferer: the operator is the
        dense one and every output byte-identical."""
        for name in CHANNELS:
            ref = _counterfactual(name, instance, patterns)
            with backend_scope(BackendConfig(topk=N - 1)):
                got = _counterfactual(name, instance, patterns)
            np.testing.assert_array_equal(got, ref)

    def test_truncation_is_conservative_on_probabilities(
        self, instance, patterns
    ):
        """Dropping interferers can only *raise* Theorem-1 success
        probabilities (every dropped log factor is <= 0)."""
        ref = Theorem1Kernel(instance, BETA).conditional_batch(patterns)
        with backend_scope(BackendConfig(topk=TOPK)):
            got = Theorem1Kernel(instance, BETA).conditional_batch(patterns)
        assert np.all(got >= ref - 1e-12)

    @pytest.mark.parametrize("name", CHANNELS)
    def test_counterfactual_disagreement_is_bounded(
        self, instance, patterns, name
    ):
        ref = _counterfactual(name, instance, patterns)
        with backend_scope(BackendConfig(topk=TOPK)):
            got = _counterfactual(name, instance, patterns)
        assert np.mean(got != ref) <= TOPK_FLIP_BUDGET

    @pytest.mark.parametrize("name", CHANNELS)
    def test_realize_disagreement_is_bounded(self, instance, patterns, name):
        ref = _realize(name, instance, patterns)
        with backend_scope(BackendConfig(topk=TOPK)):
            got = _realize(name, instance, patterns)
        assert np.mean(got != ref) <= TOPK_FLIP_BUDGET

    def test_combined_float32_topk_mode(self, instance, patterns):
        """The CLI's ``--dtype float32 --topk K`` combination: still a
        bounded perturbation of the dense float64 decisions."""
        for name in CHANNELS:
            ref = _counterfactual(name, instance, patterns)
            with backend_scope(BackendConfig(dtype="float32", topk=TOPK)):
                got = _counterfactual(name, instance, patterns)
            assert np.mean(got != ref) <= TOPK_FLIP_BUDGET


class TestIntegerPatternCoercion:
    """Satellite: channels accept 0/1 integer arrays as transmit patterns."""

    @pytest.mark.parametrize("name", CHANNELS)
    def test_zero_one_ints_equal_bools(self, instance, patterns, name):
        ints = patterns.astype(np.int64)
        ref = _counterfactual(name, instance, patterns)
        got = _counterfactual(name, instance, ints)
        np.testing.assert_array_equal(got, ref)

    def test_non_indicator_ints_rejected(self, instance, patterns):
        bad = patterns.astype(np.int64)
        bad[0, 0] = 2
        with pytest.raises(TypeError, match="0/1"):
            NonFadingChannel(instance, BETA).counterfactual_batch(bad)

    def test_float_patterns_still_rejected(self, instance, patterns):
        with pytest.raises(TypeError):
            NonFadingChannel(instance, BETA).counterfactual_batch(
                patterns.astype(np.float64)
            )
