"""The channel spec grammar and :func:`make_channel` resolution."""

import numpy as np
import pytest

from repro.channel import (
    BlockFadingChannel,
    MonteCarloChannel,
    NonFadingChannel,
    RayleighChannel,
    make_channel,
    parse_channel_spec,
)
from repro.core.sinr import SINRInstance
from repro.fading.models import NakagamiFading, RayleighFading, RicianFading


class TestParse:
    def test_bare_name(self):
        assert parse_channel_spec("rayleigh") == ("rayleigh", {})

    def test_name_with_params(self):
        name, params = parse_channel_spec("nakagami:m=2,slots=500")
        assert name == "nakagami"
        assert params == {"m": "2", "slots": "500"}

    def test_case_and_whitespace_normalised(self):
        name, params = parse_channel_spec("  Block : Coherence = 5 ")
        assert name == "block"
        assert params == {"coherence": "5"}

    @pytest.mark.parametrize("bad", ["", "   ", "nakagami:m", "nakagami:=2", "rician:k="])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_channel_spec(bad)

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            parse_channel_spec(None)


class TestMakeChannel:
    def test_nonfading(self, two_link_instance):
        ch = make_channel("nonfading", two_link_instance, 1.0)
        assert isinstance(ch, NonFadingChannel)
        assert ch.is_deterministic

    def test_rayleigh(self, two_link_instance):
        ch = make_channel("rayleigh", two_link_instance, 1.0)
        assert isinstance(ch, RayleighChannel)
        assert ch.has_exact_probabilities

    def test_rayleigh_mc(self, two_link_instance):
        ch = make_channel("rayleigh-mc:slots=123", two_link_instance, 1.0)
        assert isinstance(ch, MonteCarloChannel)
        assert isinstance(ch.model, RayleighFading)
        assert ch.mc_slots == 123

    def test_nakagami(self, two_link_instance):
        ch = make_channel("nakagami:m=2", two_link_instance, 1.0)
        assert isinstance(ch, MonteCarloChannel)
        assert isinstance(ch.model, NakagamiFading)
        assert ch.model.m == pytest.approx(2.0)

    def test_rician(self, two_link_instance):
        ch = make_channel("rician:k=4", two_link_instance, 1.0)
        assert isinstance(ch.model, RicianFading)

    def test_block_with_family(self, two_link_instance):
        ch = make_channel("block:coherence=5,family=nakagami,m=2", two_link_instance, 1.0)
        assert isinstance(ch, BlockFadingChannel)
        assert ch.block_length == 5
        assert isinstance(ch.model, NakagamiFading)

    def test_block_needs_coherence(self, two_link_instance):
        with pytest.raises(ValueError, match="coherence"):
            make_channel("block", two_link_instance, 1.0)

    def test_nakagami_needs_m(self, two_link_instance):
        with pytest.raises(ValueError, match="m parameter"):
            make_channel("nakagami", two_link_instance, 1.0)

    def test_unknown_name_rejected(self, two_link_instance):
        with pytest.raises(ValueError, match="unknown channel"):
            make_channel("weibull", two_link_instance, 1.0)

    def test_leftover_params_rejected(self, two_link_instance):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_channel("rayleigh:m=2", two_link_instance, 1.0)

    def test_built_channel_passes_through(self, two_link_instance):
        ch = RayleighChannel(two_link_instance, 1.0)
        assert make_channel(ch, two_link_instance, 1.0) is ch

    def test_foreign_channel_rejected(self, two_link_instance):
        other = SINRInstance(np.eye(3) * 4.0 + 0.5, noise=0.1)
        ch = RayleighChannel(other, 1.0)
        with pytest.raises(ValueError, match="different instance"):
            make_channel(ch, two_link_instance, 1.0)

    def test_name_round_trips_as_spec(self, two_link_instance):
        for spec in ("nonfading", "rayleigh"):
            ch = make_channel(spec, two_link_instance, 1.0)
            assert ch.name == spec
