"""The stateful block-fading channel: coherence, reset, degenerate L=1."""

import numpy as np
import pytest

from repro.channel import BlockFadingChannel, RayleighChannel
from repro.fading.models import NakagamiFading

BETA = 1.0


class TestCoherence:
    def test_same_block_same_draws(self, paper_instance):
        """Within one coherence block, identical patterns give identical
        outcomes — the channel draw is frozen."""
        ch = BlockFadingChannel(paper_instance, BETA, block_length=8)
        gen = np.random.default_rng(1)
        mask = np.ones(paper_instance.n, dtype=bool)
        first = ch.realize(mask, gen)
        for _ in range(7):
            np.testing.assert_array_equal(ch.realize(mask, gen), first)

    def test_blocks_refresh(self, paper_instance):
        """Across many block boundaries the outcome does change."""
        ch = BlockFadingChannel(paper_instance, BETA, block_length=2)
        gen = np.random.default_rng(2)
        mask = np.ones(paper_instance.n, dtype=bool)
        outcomes = {ch.realize(mask, gen).tobytes() for _ in range(40)}
        assert len(outcomes) > 1

    def test_reset_restarts_time(self, paper_instance):
        ch = BlockFadingChannel(paper_instance, BETA, block_length=4)
        gen = np.random.default_rng(3)
        ch.realize(np.ones(paper_instance.n, dtype=bool), gen)
        assert ch.time == 1
        ch.reset()
        assert ch.time == 0

    def test_subchannel_refuses(self, paper_instance):
        ch = BlockFadingChannel(paper_instance, BETA, block_length=4)
        with pytest.raises(NotImplementedError):
            ch.subchannel([0, 1])


class TestDegenerateL1:
    SLOTS = 4000

    def test_l1_matches_exact_rayleigh_marginals(self, paper_instance):
        """``L = 1`` with the Rayleigh family is the paper's i.i.d. model."""
        n = paper_instance.n
        mask = np.zeros(n, dtype=bool)
        mask[:: max(1, n // 10)] = True
        ch = BlockFadingChannel(paper_instance, BETA, block_length=1)
        gen = np.random.default_rng(7)
        hits = np.zeros(n)
        for _ in range(self.SLOTS):
            hits += ch.realize(mask, gen)
        freq = hits / self.SLOTS
        p_exact = np.where(
            mask,
            RayleighChannel(paper_instance, BETA).conditional_success_probability(
                mask.astype(float)
            ),
            0.0,
        )
        sigma = np.sqrt(np.maximum(p_exact * (1 - p_exact), 1e-12) / self.SLOTS)
        assert np.all(np.abs(freq - p_exact) <= 4.0 * sigma + 1e-9)

    def test_other_families_accepted(self, paper_instance):
        ch = BlockFadingChannel(
            paper_instance, BETA, block_length=3, model=NakagamiFading(2.0)
        )
        gen = np.random.default_rng(11)
        out = ch.transformed_step(np.full(paper_instance.n, 0.3), gen)
        assert out.shape == (paper_instance.n,)
        assert ch.name == "block(L=3, nakagami(m=2))"

    def test_expected_successes_stateless(self, paper_instance):
        ch = BlockFadingChannel(paper_instance, BETA, block_length=5)
        value = ch.expected_successes(np.arange(0, paper_instance.n, 4), rng=13)
        assert value >= 0.0
        assert ch.time == 0
