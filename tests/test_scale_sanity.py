"""Numerical sanity at larger-than-paper scale (n = 500).

The paper's simulations stop at n = 200; downstream users will not.
These tests push the core kernels to n = 500 and assert numerical
health (no overflow/NaN, probabilities in range, algorithms terminate)
— cheap insurance that the vectorized paths have no size cliffs.
"""

import numpy as np
import pytest

from repro.capacity.greedy import greedy_capacity
from repro.core.affectance import affectance_matrix
from repro.core.network import Network
from repro.core.power import SquareRootPower, UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.bounds import (
    success_probability_lower,
    success_probability_upper,
)
from repro.fading.success import success_probability
from repro.geometry.placement import paper_random_network

N = 500


@pytest.fixture(scope="module")
def big_instance():
    s, r = paper_random_network(N, area=1000.0 * np.sqrt(N / 100.0), rng=0)
    return SINRInstance.from_network(Network(s, r), UniformPower(2.0), 2.2, 4e-7)


class TestBigInstanceNumerics:
    def test_theorem1_in_range_no_warnings(self, big_instance):
        q = np.full(N, 0.5)
        with np.errstate(all="raise"):
            p = success_probability(big_instance, q, 2.5)
        assert np.all((p >= 0.0) & (p <= 1.0))
        assert np.all(np.isfinite(p))

    def test_lemma1_sandwich_at_scale(self, big_instance):
        q = np.full(N, 0.7)
        exact = success_probability(big_instance, q, 2.5)
        lo = success_probability_lower(big_instance, q, 2.5)
        hi = success_probability_upper(big_instance, q, 2.5)
        assert np.all(lo <= exact + 1e-12) and np.all(exact <= hi + 1e-12)

    def test_sinr_batch_at_scale(self, big_instance):
        patterns = np.random.default_rng(1).random((32, N)) < 0.5
        sinr = big_instance.sinr_batch(patterns)
        assert sinr.shape == (32, N)
        assert np.all(np.isfinite(sinr[patterns]))

    def test_greedy_terminates_and_feasible(self, big_instance):
        chosen = greedy_capacity(big_instance, 2.5)
        assert chosen.size > 50  # density-limited but substantial
        assert big_instance.is_feasible(chosen, 2.5)

    def test_affectance_finite(self, big_instance):
        a = affectance_matrix(big_instance, 2.5, clamped=True)
        assert np.all((a >= 0.0) & (a <= 1.0))

    def test_extreme_path_loss_exponent(self):
        """α = 6 (indoor worst case) drives gains over ~10 orders of
        magnitude; probabilities must stay clean."""
        s, r = paper_random_network(100, rng=2)
        inst = SINRInstance.from_network(Network(s, r), SquareRootPower(2.0), 6.0, 1e-12)
        q = np.full(100, 0.5)
        with np.errstate(over="raise", invalid="raise"):
            p = success_probability(inst, q, 2.5)
        assert np.all((p >= 0.0) & (p <= 1.0))

    def test_tiny_and_huge_beta(self, big_instance):
        q = np.full(N, 0.5)
        p_tiny = success_probability(big_instance, q, 1e-6)
        p_huge = success_probability(big_instance, q, 1e9)
        assert np.all(p_tiny <= q + 1e-12)
        assert np.all(p_huge >= 0.0) and p_huge.max() < 1e-3
