"""Every example script must run end-to-end and tell a coherent story.

Examples are executed in-process (imported by path, ``main()`` called)
with stdout captured, and a few load-bearing phrases are asserted so a
broken example cannot silently rot.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart",
        "capacity_planning",
        "latency_scheduling",
        "distributed_learning",
        "model_comparison",
        "beyond_rayleigh",
        "spectrum_game",
    } <= names


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "non-fading schedule" in out
    assert "Rayleigh expectation" in out
    assert "1/e" in out


def test_capacity_planning(capsys):
    out = run_example("capacity_planning", capsys)
    assert "power control [6]" in out
    assert "schedule with:" in out
    assert "Shannon objective" in out


def test_latency_scheduling(capsys):
    out = run_example("latency_scheduling", capsys)
    assert "repeated-max" in out
    assert "multi-hop" in out
    assert "makespan" in out


def test_distributed_learning(capsys):
    out = run_example("distributed_learning", capsys)
    assert "OPT" in out
    assert "Lemma 5" in out and "OK" in out
    assert "VIOLATED" not in out
    assert "exp3 bandit" in out


def test_model_comparison(capsys):
    out = run_example("model_comparison", capsys)
    assert "shape checks: all pass" in out
    assert "peaks at q=" in out


def test_beyond_rayleigh(capsys):
    out = run_example("beyond_rayleigh", capsys)
    assert "ratio" in out
    assert "<- Rayleigh" in out
    assert "worst case" in out


def test_spectrum_game(capsys):
    out = run_example("spectrum_game", capsys)
    assert "[Nash]" in out
    assert "PoA" in out
    assert "no-regret learners" in out
