"""End-to-end tests for the extension experiments E11–E14."""

import pytest

from repro.experiments import (
    Figure1Config,
    run_alg1_ablation,
    run_approximation_factors,
    run_block_fading_check,
    run_density_sweep,
    run_equilibria_study,
    run_delta_sweep,
    run_fading_families,
    run_feedback_comparison,
    run_graph_gap,
    run_latency_scaling,
    run_optimum_gap,
    run_shannon_figure,
)


class TestOptimumGap:
    def test_runs_and_checks_pass(self):
        res = run_optimum_gap(sizes=(15, 30), networks_per_size=2, restarts=3)
        assert res.experiment_id == "E11"
        assert res.all_checks_pass, res.checks
        assert len(res.data["rows"]) == 2
        # Every measured ratio obeys the two-sided theory bracket.
        assert all(0.3 <= r <= 2.5 for r in res.data["ratios"])


class TestAlg1Ablation:
    def test_runs_and_checks_pass(self):
        res = run_alg1_ablation(
            n=25, trials=50, repeats_grid=(3, 19), damping_grid=(2.0, 4.0)
        )
        assert res.experiment_id == "E12"
        assert res.all_checks_pass, res.checks
        rows = res.data["rows"]
        assert len(rows) == 4
        # Slot count = repeats x stage count.
        stages = rows[0][2] // rows[0][0]
        assert all(r[2] == r[0] * stages for r in rows)


class TestDensitySweep:
    def test_runs_and_checks_pass(self):
        res = run_density_sweep(num_networks=3, num_transmit_seeds=8)
        assert res.experiment_id == "E13"
        assert res.all_checks_pass, res.checks
        rows = res.data["rows"]
        # Densities strictly increase along the sweep.
        densities = [r[1] for r in rows]
        assert densities == sorted(densities)


class TestBlockFadingCheck:
    def test_runs_and_checks_pass(self):
        res = run_block_fading_check(n=35, trials=600, block_lengths=(1, 4))
        assert res.experiment_id == "E15"
        assert res.all_checks_pass, res.checks
        rows = res.data["rows"]
        assert rows[0][0] == "(exact i.i.d.)"
        # L = 1 within a few percent of the exact value.
        assert abs(rows[1][1] - res.data["exact_iid"]) <= 0.1 * res.data["exact_iid"]


class TestEquilibriaStudy:
    def test_runs_and_checks_pass(self):
        res = run_equilibria_study(n=30, num_networks=2, num_starts=4)
        assert res.experiment_id == "E16"
        assert res.all_checks_pass, res.checks
        assert len(res.data["rows"]) == 4  # 2 networks x 2 models


class TestShannonFigure:
    def test_runs_and_checks_pass(self):
        cfg = Figure1Config(
            num_networks=3,
            num_links=40,
            area=1000.0 * (40 / 100) ** 0.5,
            num_transmit_seeds=6,
            probabilities=(0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
        )
        res = run_shannon_figure(cfg, fading_slots=4)
        assert res.experiment_id == "E17"
        assert res.all_checks_pass, res.checks
        assert len(res.data["q"]) == 6


class TestDeltaSweep:
    def test_runs_and_checks_pass(self):
        res = run_delta_sweep(
            clusters=4, classes=3, deltas=(1.0, 16.0, 256.0), networks_per_delta=3
        )
        assert res.experiment_id == "E21"
        assert res.all_checks_pass, res.checks
        # Uniform capacity never exceeds power control's at max delta.
        last = res.data["rows"][-1]
        assert last[1] <= last[3] + 1e-9


class TestFeedbackComparison:
    def test_runs_and_checks_pass(self):
        from repro.experiments import Figure2Config

        cfg = Figure2Config(num_networks=1, num_links=50, num_rounds=50, opt_restarts=3)
        res = run_feedback_comparison(config=cfg)
        assert res.experiment_id == "E22"
        assert res.all_checks_pass, res.checks
        assert len(res.data["rows"]) == 4  # 1 network x 2 models x 2 feedbacks


class TestGraphGap:
    def test_runs_and_checks_pass(self):
        res = run_graph_gap(num_links=40, networks_per_area=2, num_samples=50)
        assert res.experiment_id == "E20"
        assert res.all_checks_pass, res.checks
        # Gaps are fractions.
        assert all(0.0 <= g <= 1.0 for g in res.data["gaps"])


class TestLatencyScaling:
    def test_runs_and_checks_pass(self):
        res = run_latency_scaling(sizes=(15, 30), networks_per_size=2)
        assert res.experiment_id == "E18"
        assert res.all_checks_pass, res.checks
        rows = res.data["rows"]
        # Lower bound never exceeds the achieved latency.
        assert all(row[1] <= row[2] + 1e-9 for row in rows)


class TestApproximationFactors:
    def test_runs_and_checks_pass(self):
        res = run_approximation_factors(n=10, seeds=2)
        assert res.experiment_id == "E19"
        assert res.all_checks_pass, res.checks
        # Uniform-power algorithms can never beat the uniform-power exact
        # optimum; power control can.
        for key, vals in res.data["ratios"].items():
            if "power control" not in key:
                assert all(v <= 1.0 + 1e-9 for v in vals), key


class TestFadingFamilies:
    def test_runs_and_checks_pass(self):
        res = run_fading_families(n=30, num_networks=2, mc_slots=800)
        assert res.experiment_id == "E14"
        assert res.all_checks_pass, res.checks
        means = res.data["means"]
        assert "nakagami m=1" in means and "rician K=0" in means

    def test_custom_grids(self):
        res = run_fading_families(
            n=20,
            num_networks=1,
            nakagami_m=(1.0, 8.0),
            rician_k=(0.0, 8.0),
            mc_slots=500,
        )
        assert len(res.data["means"]) == 4
