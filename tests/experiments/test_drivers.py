"""End-to-end tests: every experiment driver runs and its shape checks hold.

Tiny configurations keep this fast; the full-size runs live in
``benchmarks/``.  These tests are the reproduction's regression net — a
change that breaks any of the paper's qualitative claims fails here.
"""

import json

import numpy as np
import pytest

from repro.experiments import (
    Figure1Config,
    Figure2Config,
    run_aloha_transform_check,
    run_capacity_compare,
    run_figure1,
    run_figure2,
    run_latency_compare,
    run_lemma2_transfer,
    run_lemma_bounds,
    run_optimum_stat,
    run_regret_stats,
    run_theorem2,
)

# Area scaled with sqrt(n) so link *density* — which drives every
# interference shape in the paper — matches the full-size Figure-1 setup.
TINY_FIG1 = Figure1Config(
    num_networks=3,
    num_links=40,
    area=1000.0 * (40 / 100) ** 0.5,
    num_transmit_seeds=6,
    probabilities=(0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
)
TINY_FIG2 = Figure2Config(num_networks=1, num_links=60, num_rounds=50, opt_restarts=3)


class TestFigure1:
    def test_runs_and_checks_pass(self):
        res = run_figure1(TINY_FIG1)
        assert res.experiment_id == "E1"
        assert res.all_checks_pass, res.checks
        assert len(res.data["q"]) == 6
        for curve in (
            "uniform nonfading",
            "uniform rayleigh",
            "sqrt nonfading",
            "sqrt rayleigh",
        ):
            assert len(res.data[curve]) == 6
            assert all(v >= 0 for v in res.data[curve])

    def test_sampled_fading_mode_agrees_with_exact(self):
        cfg_exact = TINY_FIG1
        cfg_sample = Figure1Config(
            **{**cfg_exact.__dict__, "fading_mode": "sample", "num_fading_seeds": 20}
        )
        exact = run_figure1(cfg_exact)
        sample = run_figure1(cfg_sample)
        a = np.array(exact.data["uniform rayleigh"])
        b = np.array(sample.data["uniform rayleigh"])
        assert np.abs(a - b).max() < 1.5  # MC noise only

    def test_render_and_json(self):
        res = run_figure1(TINY_FIG1)
        out = res.render()
        assert "E1" in out and "PASS" in out
        parsed = json.loads(res.to_json())
        assert parsed["experiment_id"] == "E1"

    def test_bad_fading_mode(self):
        cfg = Figure1Config(**{**TINY_FIG1.__dict__, "fading_mode": "psychic"})
        with pytest.raises(ValueError):
            run_figure1(cfg)


class TestFigure2:
    def test_runs_and_checks_pass(self):
        res = run_figure2(TINY_FIG2)
        assert res.experiment_id == "E2"
        assert res.all_checks_pass, res.checks
        assert len(res.data["nonfading"]) == TINY_FIG2.num_rounds
        assert res.data["opt estimate"][0] > 0


class TestOptimumStat:
    def test_runs_and_checks_pass(self):
        res = run_optimum_stat(TINY_FIG1, restarts=4, exact_subinstance_size=12)
        assert res.all_checks_pass, res.checks
        assert len(res.data["local_search_sizes"]) == TINY_FIG1.num_networks


class TestLemmaBounds:
    def test_runs_and_checks_pass(self):
        res = run_lemma_bounds(
            TINY_FIG1, q_levels=(0.2, 0.8), beta_levels=(1.0, 2.5), mc_samples=800
        )
        assert res.all_checks_pass, res.checks
        assert len(res.data["rows"]) == 4


class TestLemma2Transfer:
    def test_runs_and_checks_pass(self):
        res = run_lemma2_transfer(TINY_FIG1, mc_samples=400)
        assert res.all_checks_pass, res.checks
        assert len(res.data["ratios"]) == 6  # 2 powers x 3 utilities


class TestTheorem2:
    def test_runs_and_checks_pass(self):
        res = run_theorem2(sizes=(15, 40), q_level=0.5, trials=60)
        assert res.all_checks_pass, res.checks
        assert len(res.data["rows"]) == 2


class TestCapacityCompare:
    def test_runs_and_checks_pass(self):
        res = run_capacity_compare(TINY_FIG1, nested_n=8, opt_restarts=3)
        assert res.all_checks_pass, res.checks


class TestLatencyCompare:
    def test_runs_and_checks_pass(self):
        res = run_latency_compare(TINY_FIG1, rayleigh_trials=2)
        assert res.all_checks_pass, res.checks


class TestRegretStats:
    def test_runs_and_checks_pass(self):
        res = run_regret_stats(TINY_FIG2)
        assert res.all_checks_pass, res.checks


class TestAlohaTransformCheck:
    def test_runs_and_checks_pass(self):
        res = run_aloha_transform_check(
            TINY_FIG1, q_levels=(0.1, 0.5), mc_samples=1500
        )
        assert res.all_checks_pass, res.checks


class TestResultContainer:
    def test_all_checks_pass_logic(self):
        from repro.experiments.runner import ExperimentResult

        good = ExperimentResult("EX", "t", "text", checks={"a": True})
        bad = ExperimentResult("EX", "t", "text", checks={"a": True, "b": False})
        assert good.all_checks_pass and not bad.all_checks_pass
        assert "FAIL" in bad.render()
