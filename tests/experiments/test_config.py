"""The paper's parameters, verbatim — if a preset drifts, these fail.

Section 7 states every simulation constant explicitly; the ``paper()``
presets must match them exactly, since "reproduction at paper scale"
means nothing otherwise.
"""

import pytest

from repro.experiments.config import Figure1Config, Figure2Config, PaperParameters


class TestPaperParameters:
    def test_figure1_constants(self):
        pp = PaperParameters.figure1()
        assert pp.beta == 2.5       # "β = 2.5"
        assert pp.alpha == 2.2      # "α = 2.2"
        assert pp.noise == 4e-7     # "ν = 4 · 10^-7"
        assert pp.power_scale == 2.0  # "p_i = 2"

    def test_figure2_constants(self):
        pp = PaperParameters.figure2()
        assert pp.beta == 0.5       # "β = 0.5"
        assert pp.alpha == 2.1      # "α = 2.1"
        assert pp.noise == 0.0      # "ν = 0"
        assert pp.power_scale == 2.0


class TestFigure1Config:
    def test_paper_scale(self):
        cfg = Figure1Config.paper()
        assert cfg.num_networks == 40        # "40 different networks"
        assert cfg.num_links == 100          # "100 links each"
        assert cfg.area == 1000.0            # "1000 x 1000 plane"
        assert cfg.min_length == 20.0        # "between 20 and 40"
        assert cfg.max_length == 40.0
        assert cfg.num_transmit_seeds == 25  # "25 different seeds"
        assert cfg.num_fading_seeds == 10    # "10 different seeds"
        assert cfg.fading_mode == "sample"   # paper-style explicit seeds

    def test_quick_preserves_physics(self):
        q, p = Figure1Config.quick(), Figure1Config.paper()
        assert q.params == p.params
        assert (q.num_links, q.area, q.min_length, q.max_length) == (
            p.num_links, p.area, p.min_length, p.max_length,
        )
        assert q.num_networks < p.num_networks  # only the ensemble shrinks

    def test_probability_grid_covers_unit_interval(self):
        probs = Figure1Config.paper().probabilities
        assert min(probs) <= 0.1 and max(probs) == pytest.approx(1.0)
        assert all(b > a for a, b in zip(probs, probs[1:]))


class TestFigure2Config:
    def test_paper_scale(self):
        cfg = Figure2Config.paper()
        assert cfg.num_links == 200          # "networks with 200 links"
        assert cfg.min_length == 0.0         # "distances between 0 and 100"
        assert cfg.max_length == 100.0
        assert cfg.num_rounds >= 100          # convergence visible by 30-40

    def test_quick_preserves_physics(self):
        assert Figure2Config.quick().params == Figure2Config.paper().params

    def test_configs_frozen(self):
        cfg = Figure1Config.paper()
        with pytest.raises(AttributeError):
            cfg.num_links = 5
