"""Unit tests for experiment-driver internals (helpers with their own logic)."""

import numpy as np
import pytest

from repro.experiments.config import Figure1Config, PaperParameters
from repro.experiments.density_sweep import _crossover
from repro.experiments.figure1 import _network_curves
from repro.experiments.workloads import figure1_networks, figure2_networks, instance_pair


class TestCrossoverDetector:
    def test_simple_crossing(self):
        q = np.array([0.1, 0.2, 0.3, 0.4])
        nf = np.array([3.0, 2.0, 1.0, 0.5])
        ray = np.array([1.0, 1.5, 2.0, 2.5])
        assert _crossover(q, nf, ray) == pytest.approx(0.3)

    def test_no_crossing(self):
        q = np.array([0.1, 0.2, 0.3])
        nf = np.array([3.0, 3.0, 3.0])
        ray = np.array([1.0, 1.0, 1.0])
        assert _crossover(q, nf, ray) is None

    def test_touching_counts_as_crossing(self):
        q = np.array([0.1, 0.2])
        nf = np.array([2.0, 1.0])
        ray = np.array([1.0, 1.0])
        assert _crossover(q, nf, ray) == pytest.approx(0.2)

    def test_rayleigh_ahead_from_start_is_no_crossing(self):
        q = np.array([0.1, 0.2])
        nf = np.array([1.0, 1.0])
        ray = np.array([2.0, 2.0])
        assert _crossover(q, nf, ray) is None


class TestFigure1Internals:
    @pytest.fixture
    def instance(self):
        cfg = Figure1Config.quick()
        net = figure1_networks(cfg)[0]
        inst, _ = instance_pair(net, cfg.params, with_sqrt=False)
        return inst

    def test_exact_and_sample_modes_agree(self, instance):
        # Single q so both modes consume identical pattern draws (the
        # sample mode additionally consumes fading draws *after* the
        # patterns of that q).
        probs = np.array([0.5])
        nf_a, ray_exact = _network_curves(
            instance, probs, 40, 0, "exact", 2.5, np.random.default_rng(0)
        )
        nf_b, ray_sample = _network_curves(
            instance, probs, 40, 50, "sample", 2.5, np.random.default_rng(0)
        )
        # Same transmit-pattern stream → identical non-fading values.
        np.testing.assert_allclose(nf_a, nf_b)
        # Exact expectation vs 50-seed sampling: close.
        np.testing.assert_allclose(ray_exact, ray_sample, atol=1.5)

    def test_zero_probability_no_successes(self, instance):
        nf, ray = _network_curves(
            instance, np.array([0.0]), 5, 0, "exact",
            2.5, np.random.default_rng(1),
        )
        assert nf[0] == 0.0 and ray[0] == 0.0

    def test_rayleigh_expectation_below_active_count(self, instance):
        probs = np.array([0.5])
        _, ray = _network_curves(
            instance, probs, 10, 0, "exact", 2.5, np.random.default_rng(2)
        )
        assert 0.0 <= ray[0] <= instance.n * 0.5 + 3 * np.sqrt(instance.n)


class TestWorkloads:
    def test_figure1_ensemble_is_deterministic(self):
        cfg = Figure1Config.quick()
        a = figure1_networks(cfg)
        b = figure1_networks(cfg)
        assert len(a) == cfg.num_networks
        np.testing.assert_array_equal(a[0].senders, b[0].senders)

    def test_different_seed_different_ensemble(self):
        cfg_a = Figure1Config.quick()
        cfg_b = Figure1Config(**{**cfg_a.__dict__, "seed": 999})
        a = figure1_networks(cfg_a)[0]
        b = figure1_networks(cfg_b)[0]
        assert not np.array_equal(a.senders, b.senders)

    def test_figure2_link_lengths_in_interval(self):
        from repro.experiments.config import Figure2Config

        cfg = Figure2Config.quick()
        for net in figure2_networks(cfg):
            assert net.lengths.max() <= cfg.max_length + 1e-9

    def test_instance_pair_powers(self):
        cfg = Figure1Config.quick()
        net = figure1_networks(cfg)[0]
        uniform, sqrt_inst = instance_pair(net, cfg.params, with_sqrt=True)
        # Uniform: own-signal = p / d^α; sqrt: p·d^{α/2} / d^α = p·d^{-α/2}.
        d = net.lengths
        np.testing.assert_allclose(
            uniform.signal, 2.0 / d**cfg.params.alpha, rtol=1e-12
        )
        np.testing.assert_allclose(
            sqrt_inst.signal, 2.0 * d ** (-cfg.params.alpha / 2.0), rtol=1e-12
        )

    def test_instance_pair_without_sqrt(self):
        cfg = Figure1Config.quick()
        net = figure1_networks(cfg)[0]
        _, sqrt_inst = instance_pair(net, cfg.params, with_sqrt=False)
        assert sqrt_inst is None


class TestPaperParametersEquality:
    def test_frozen_and_comparable(self):
        assert PaperParameters.figure1() == PaperParameters.figure1()
        assert PaperParameters.figure1() != PaperParameters.figure2()
