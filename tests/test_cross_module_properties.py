"""Cross-module property-based invariants.

Each property here ties at least two subsystems together; they are the
suite's deepest regression net because a violation means two
independently-tested components disagree about the *model*.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capacity.greedy import greedy_capacity
from repro.capacity.optimum import local_search_capacity
from repro.core.affectance import affectance_matrix, total_affectance
from repro.core.network import Network
from repro.core.power import LengthScaledPower, UniformPower
from repro.core.sinr import SINRInstance
from repro.fading.bounds import (
    success_probability_lower,
    success_probability_upper,
)
from repro.fading.success import (
    success_probability,
    success_probability_conditional,
    success_probability_conditional_batch,
)
from repro.geometry.placement import paper_random_network
from repro.transform.blackbox import rayleigh_expected_binary
from repro.utility.binary import BinaryUtility

seeds = st.integers(0, 10**6)


def make_instance(seed: int, n_max: int = 18, tau: "float | None" = None) -> SINRInstance:
    gen = np.random.default_rng(seed)
    n = int(gen.integers(3, n_max))
    s, r = paper_random_network(n, rng=gen, area=float(gen.uniform(200, 1200)))
    power = UniformPower(2.0) if tau is None else LengthScaledPower(tau, 2.0)
    return SINRInstance.from_network(
        Network(s, r), power, alpha=float(gen.uniform(2.05, 3.5)),
        noise=float(gen.uniform(0.0, 1e-6)),
    )


class TestModelConsistency:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_deterministic_feasibility_equals_certain_rayleigh_low_noise(self, seed):
        """A non-fading-feasible set keeps ≥ 1/e of its size in Rayleigh
        expectation — Lemma 2 glued across three modules (greedy,
        Theorem 1, transfer)."""
        inst = make_instance(seed)
        beta = float(np.random.default_rng(seed + 1).uniform(0.5, 3.0))
        chosen = greedy_capacity(inst, beta)
        if chosen.size == 0:
            return
        expected = rayleigh_expected_binary(inst, chosen, beta)
        assert expected >= chosen.size / np.e - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_affectance_and_sinr_agree_on_greedy_output(self, seed):
        inst = make_instance(seed)
        beta = 2.0
        chosen = greedy_capacity(inst, beta)
        mask = np.zeros(inst.n, dtype=bool)
        mask[chosen] = True
        a = affectance_matrix(inst, beta, clamped=False)
        incoming = total_affectance(a, mask)
        sinr_ok = inst.successes(mask, beta)
        for i in chosen:
            assert incoming[i] <= 1.0 + 1e-9
            assert sinr_ok[i]

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, tau=st.sampled_from([0.0, 0.5, 1.0]))
    def test_lemma1_sandwich_all_power_families(self, seed, tau):
        inst = make_instance(seed, tau=tau)
        gen = np.random.default_rng(seed + 2)
        q = gen.random(inst.n)
        beta = float(gen.uniform(0.2, 5.0))
        exact = success_probability(inst, q, beta)
        assert np.all(success_probability_lower(inst, q, beta) <= exact + 1e-12)
        assert np.all(exact <= success_probability_upper(inst, q, beta) + 1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_batch_and_scalar_conditional_agree(self, seed):
        inst = make_instance(seed)
        gen = np.random.default_rng(seed + 3)
        patterns = gen.random((5, inst.n)) < 0.5
        beta = 1.5
        batch = success_probability_conditional_batch(inst, patterns, beta)
        for t in range(5):
            single = success_probability_conditional(
                inst, patterns[t].astype(np.float64), beta
            )
            np.testing.assert_allclose(batch[t], single, rtol=1e-9, atol=1e-15)


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_capacity_non_increasing_in_beta(self, seed):
        """Raising the threshold can only shrink the best feasible set."""
        inst = make_instance(seed)
        sizes = [
            local_search_capacity(inst, beta, rng=seed, restarts=3).size
            for beta in (0.5, 1.5, 4.0)
        ]
        # The estimator is randomized; allow one link of slack.
        assert sizes[0] + 1 >= sizes[1] and sizes[1] + 1 >= sizes[2]

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_expected_capacity_non_increasing_in_noise(self, seed):
        inst = make_instance(seed)
        q = np.full(inst.n, 0.5)
        beta = 2.0
        low = success_probability(inst.with_noise(0.0), q, beta).sum()
        high = success_probability(inst.with_noise(1.0), q, beta).sum()
        assert high <= low + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_subinstance_preserves_conditional_probabilities(self, seed):
        """Links outside the active set do not influence Q̃ — restricting
        the instance to the active links must not change anything."""
        inst = make_instance(seed)
        gen = np.random.default_rng(seed + 4)
        mask = gen.random(inst.n) < 0.6
        if not mask.any():
            return
        idx = np.flatnonzero(mask)
        beta = 1.7
        full = success_probability_conditional(inst, mask.astype(float), beta)[idx]
        sub = inst.subinstance(idx)
        restricted = success_probability_conditional(
            sub, np.ones(idx.size), beta
        )
        np.testing.assert_allclose(full, restricted, rtol=1e-10)


class TestUtilityConsistency:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_binary_utility_total_equals_success_count(self, seed):
        inst = make_instance(seed)
        gen = np.random.default_rng(seed + 5)
        mask = gen.random(inst.n) < 0.5
        beta = 2.0
        profile = BinaryUtility(inst.n, beta)
        sinr = inst.sinr(mask)
        assert profile.total(sinr[None, :], mask[None, :])[0] == inst.success_count(
            mask, beta
        )
